//! `_213_javac` analog: the compiler loop.
//!
//! Tokenizes synthetic sources, runs a shunting-yard precedence parser into
//! RPN, constant-folds the result, and evaluates it to verify — compiler
//! front-end control flow with moderate block lengths.

use crate::asm::{Asm, JavaImage};

const SRC_LEN: i64 = 256;
const COMPILATIONS: i64 = 60;

/// Token encoding: 0 end, 1 literal (value in val[]), 2 `+`, 3 `*`, 4 `-`.
/// Builds the benchmark image.
pub fn build() -> JavaImage {
    let mut a = Asm::new();
    a.class("Main", None, &[]);

    a.begin_static("Main", "next", 0, 1);
    a.getstatic("Main.seed");
    a.ldc(1103515245);
    a.imul();
    a.ldc(12345);
    a.iadd();
    a.ldc(0x7fffffff);
    a.iand();
    a.dup();
    a.putstatic("Main.seed");
    a.ireturn();
    a.end_method();

    // static void gen(int[] kind, int[] val): literal (op literal)* end
    a.begin_static("Main", "gen", 2, 4);
    // locals: 0 kind, 1 val, 2 i, 3 n
    a.iload(0);
    a.arraylength();
    a.ldc(2);
    a.isub();
    a.istore(3);
    // kind[0] = literal
    a.iload(0);
    a.ldc(0);
    a.ldc(1);
    a.iastore();
    a.iload(1);
    a.ldc(0);
    a.invokestatic("Main.next");
    a.ldc(100);
    a.irem();
    a.iastore();
    a.ldc(1);
    a.istore(2);
    a.label("more");
    a.iload(2);
    a.iload(3);
    a.if_icmpge("fin");
    // operator
    a.iload(0);
    a.iload(2);
    a.invokestatic("Main.next");
    a.ldc(3);
    a.irem();
    a.ldc(2);
    a.iadd();
    a.iastore();
    a.iload(1);
    a.iload(2);
    a.ldc(0);
    a.iastore();
    a.iinc(2, 1);
    // literal
    a.iload(0);
    a.iload(2);
    a.ldc(1);
    a.iastore();
    a.iload(1);
    a.iload(2);
    a.invokestatic("Main.next");
    a.ldc(100);
    a.irem();
    a.iastore();
    a.iinc(2, 1);
    a.goto("more");
    a.label("fin");
    a.iload(0);
    a.iload(2);
    a.ldc(0);
    a.iastore();
    a.ret();
    a.end_method();

    // static int prec(int op): * binds tighter than + and -
    a.begin_static("Main", "prec", 1, 1);
    a.iload(0);
    a.ldc(3);
    a.if_icmpeq("tight");
    a.ldc(1);
    a.ireturn();
    a.label("tight");
    a.ldc(2);
    a.ireturn();
    a.end_method();

    // static int apply(int op, int x, int y)
    a.begin_static("Main", "apply", 3, 3);
    a.iload(0);
    a.ldc(2);
    a.if_icmpne("notadd");
    a.iload(1);
    a.iload(2);
    a.iadd();
    a.ldc(0x3fff);
    a.iand();
    a.ireturn();
    a.label("notadd");
    a.iload(0);
    a.ldc(3);
    a.if_icmpne("notmul");
    a.iload(1);
    a.iload(2);
    a.imul();
    a.ldc(0x3fff);
    a.iand();
    a.ireturn();
    a.label("notmul");
    a.iload(1);
    a.iload(2);
    a.isub();
    a.ldc(0x3fff);
    a.iand();
    a.ireturn();
    a.end_method();

    // static int compile(int[] kind, int[] val):
    // shunting-yard with value eager evaluation (constant folding): since
    // every operand is a literal, folding reduces the whole program — the
    // parser keeps a value stack and an operator stack.
    a.begin_static("Main", "compile", 2, 10);
    // locals: 0 kind, 1 val, 2 i, 3 vals(arr), 4 ops(arr), 5 vsp, 6 osp,
    //         7 tok, 8 x, 9 y
    a.ldc(64);
    a.newarray();
    a.istore(3);
    a.ldc(64);
    a.newarray();
    a.istore(4);
    a.ldc(0);
    a.istore(5);
    a.ldc(0);
    a.istore(6);
    a.ldc(0);
    a.istore(2);
    a.label("scan");
    a.iload(0);
    a.iload(2);
    a.iaload();
    a.istore(7);
    a.iload(7);
    a.ifeq("drain");
    a.iload(7);
    a.ldc(1);
    a.if_icmpne("operator");
    // literal: push value
    a.iload(3);
    a.iload(5);
    a.iload(1);
    a.iload(2);
    a.iaload();
    a.iastore();
    a.iinc(5, 1);
    a.goto("advance");
    a.label("operator");
    // while osp>0 && prec(top) >= prec(tok): reduce
    a.label("reduce");
    a.iload(6);
    a.ifle("push");
    a.iload(4);
    a.iload(6);
    a.ldc(1);
    a.isub();
    a.iaload();
    a.invokestatic("Main.prec");
    a.iload(7);
    a.invokestatic("Main.prec");
    a.if_icmplt("push");
    // y = vals[--vsp]; x = vals[--vsp]
    a.iinc(5, -1);
    a.iload(3);
    a.iload(5);
    a.iaload();
    a.istore(9);
    a.iinc(5, -1);
    a.iload(3);
    a.iload(5);
    a.iaload();
    a.istore(8);
    // vals[vsp++] = apply(ops[--osp], x, y)
    a.iinc(6, -1);
    a.iload(3);
    a.iload(5);
    a.iload(4);
    a.iload(6);
    a.iaload();
    a.iload(8);
    a.iload(9);
    a.invokestatic("Main.apply");
    a.iastore();
    a.iinc(5, 1);
    a.goto("reduce");
    a.label("push");
    a.iload(4);
    a.iload(6);
    a.iload(7);
    a.iastore();
    a.iinc(6, 1);
    a.label("advance");
    a.iinc(2, 1);
    a.goto("scan");
    a.label("drain");
    a.iload(6);
    a.ifle("answer");
    a.iinc(5, -1);
    a.iload(3);
    a.iload(5);
    a.iaload();
    a.istore(9);
    a.iinc(5, -1);
    a.iload(3);
    a.iload(5);
    a.iaload();
    a.istore(8);
    a.iinc(6, -1);
    a.iload(3);
    a.iload(5);
    a.iload(4);
    a.iload(6);
    a.iaload();
    a.iload(8);
    a.iload(9);
    a.invokestatic("Main.apply");
    a.iastore();
    a.iinc(5, 1);
    a.goto("drain");
    a.label("answer");
    a.iload(3);
    a.ldc(0);
    a.iaload();
    a.ireturn();
    a.end_method();

    // main
    a.begin_static("Main", "main", 0, 4);
    // locals: 0 kind, 1 val, 2 c, 3 checksum
    a.ldc(213_001);
    a.putstatic("Main.seed");
    a.ldc(SRC_LEN);
    a.newarray();
    a.istore(0);
    a.ldc(SRC_LEN);
    a.newarray();
    a.istore(1);
    a.ldc(0);
    a.istore(3);
    a.ldc(0);
    a.istore(2);
    a.label("cloop");
    a.iload(2);
    a.ldc(COMPILATIONS);
    a.if_icmpge("report");
    a.iload(0);
    a.iload(1);
    a.invokestatic("Main.gen");
    a.iload(0);
    a.iload(1);
    a.invokestatic("Main.compile");
    a.iload(3);
    a.ixor();
    a.istore(3);
    a.iinc(2, 1);
    a.goto("cloop");
    a.label("report");
    a.iload(3);
    a.print_int();
    a.ret();
    a.end_method();

    a.link()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::run;
    use ivm_core::NullEvents;

    #[test]
    fn compiles_sources() {
        let out = run(&build(), &mut NullEvents, 100_000_000).expect("runs");
        assert!(!out.text.is_empty());
        assert!(out.steps > 100_000);
    }
}
