//! The SPECjvm98-analog benchmark suite (paper Table VII).
//!
//! Each program is a workload analog of the corresponding SPECjvm98
//! benchmark, written against the [`crate::Asm`] bytecode assembler: the
//! computational character (long array loops for compress/mpeg, object and
//! virtual-call pressure for db/mtrt, rule matching for jess, parsing for
//! javac/jack) matches the original's role in the suite.

mod compress;
mod db;
mod jack;
mod javac;
mod jess;
mod mpeg;
mod mtrt;

use crate::asm::JavaImage;

/// One benchmark: name, builder, and the original it stands in for.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Paper benchmark name (Table VII, short form).
    pub name: &'static str,
    /// Builds the linked image.
    pub build: fn() -> JavaImage,
    /// What the original SPECjvm98 program was.
    pub description: &'static str,
}

/// `_228_jack`: parser generator (lexing state machine).
pub const JACK: Benchmark = Benchmark {
    name: "jack",
    build: jack::build,
    description: "lexer state machine over synthetic text, parsed repeatedly",
};

/// `_222_mpegaudio`: MPEG Layer-3 decoder (fixed-point DSP).
pub const MPEG: Benchmark = Benchmark {
    name: "mpeg",
    build: mpeg::build,
    description: "fixed-point filterbank: unrolled multiply-accumulate blocks",
};

/// `_201_compress`: modified Lempel-Ziv compression.
pub const COMPRESS: Benchmark = Benchmark {
    name: "compress",
    build: compress::build,
    description: "LZW compression with an open-addressing dictionary",
};

/// `_213_javac`: the JDK 1.0.2 Java compiler.
pub const JAVAC: Benchmark = Benchmark {
    name: "javac",
    build: javac::build,
    description: "tokenizer + precedence parser + constant folder over synthetic sources",
};

/// `_202_jess`: the Java Expert Shell System.
pub const JESS: Benchmark = Benchmark {
    name: "jess",
    build: jess::build,
    description: "forward-chaining rule matcher over a fact base of objects",
};

/// `_209_db`: an in-memory database.
pub const DB: Benchmark = Benchmark {
    name: "db",
    build: db::build,
    description: "record objects: insert, shell sort via comparators, probe",
};

/// `_227_mtrt`: a (multithreaded) ray tracer — single-threaded analog.
pub const MTRT: Benchmark = Benchmark {
    name: "mtrt",
    build: mtrt::build,
    description: "fixed-point sphere ray tracer with a large polymorphic scene code footprint",
};

/// The full suite in the paper's Figure 9 order.
pub const SUITE: [Benchmark; 7] = [JACK, MPEG, COMPRESS, JAVAC, JESS, DB, MTRT];

/// Looks a benchmark up by paper name.
pub fn find(name: &str) -> Option<Benchmark> {
    SUITE.into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::run;
    use ivm_core::NullEvents;

    #[test]
    fn all_benchmarks_build_and_run() {
        for b in SUITE {
            let image = (b.build)();
            assert!(image.program.len() > 80, "{} should be a real program", b.name);
            let out = run(&image, &mut NullEvents, 100_000_000)
                .unwrap_or_else(|e| panic!("{} failed: {e}", b.name));
            assert!(!out.text.is_empty(), "{} should print a checksum", b.name);
            assert!(out.steps > 10_000, "{} should do real work ({} steps)", b.name, out.steps);
        }
    }

    #[test]
    fn quickable_sites_quicken() {
        // Object-heavy benchmarks must exercise the quickening machinery.
        for b in [DB, MTRT, JESS] {
            let image = (b.build)();
            let out = run(&image, &mut NullEvents, 100_000_000).expect("runs");
            assert!(out.quickenings > 5, "{}: {}", b.name, out.quickenings);
            assert!(out.allocations > 10, "{}: {}", b.name, out.allocations);
        }
    }

    #[test]
    fn find_by_name() {
        assert_eq!(find("db").map(|b| b.name), Some("db"));
        assert!(find("nope").is_none());
    }
}
