//! `_228_jack` analog: a lexer driven over the same input repeatedly.
//!
//! Jack is a parser generator that famously parses its own input 16 times.
//! The analog runs a hand-written scanner state machine (identifiers,
//! numbers, strings, comments, punctuation) over a synthetic character
//! buffer 16 times and checksums the token stream.

use crate::asm::{Asm, JavaImage};

const TEXT_LEN: i64 = 1_500;
const PASSES: i64 = 16;

/// Builds the benchmark image.
pub fn build() -> JavaImage {
    let mut a = Asm::new();
    a.class("Main", None, &[]);

    a.begin_static("Main", "next", 0, 1);
    a.getstatic("Main.seed");
    a.ldc(1103515245);
    a.imul();
    a.ldc(12345);
    a.iadd();
    a.ldc(0x7fffffff);
    a.iand();
    a.dup();
    a.putstatic("Main.seed");
    a.ireturn();
    a.end_method();

    // static int[] text(int n): character-class codes 0..9 —
    // 0 whitespace, 1-4 letters, 5-6 digits, 7 punctuation, 8 quote,
    // 9 comment marker (skip to next whitespace).
    a.begin_static("Main", "text", 1, 3);
    a.iload(0);
    a.newarray();
    a.istore(1);
    a.ldc(0);
    a.istore(2);
    a.label("fill");
    a.iload(2);
    a.iload(0);
    a.if_icmpge("filled");
    a.iload(1);
    a.iload(2);
    a.invokestatic("Main.next");
    a.ldc(10);
    a.irem();
    a.iastore();
    a.iinc(2, 1);
    a.goto("fill");
    a.label("filled");
    a.iload(1);
    a.ireturn();
    a.end_method();

    // static int scan(int[] buf): tokenizes one pass, returns
    // checksum ^ (ntokens << 16).
    a.begin_static("Main", "scan", 1, 8);
    // locals: 0 buf, 1 i, 2 n, 3 c, 4 checksum, 5 ntok, 6 toklen, 7 tokkind
    a.ldc(0);
    a.istore(1);
    a.iload(0);
    a.arraylength();
    a.istore(2);
    a.ldc(0);
    a.istore(4);
    a.ldc(0);
    a.istore(5);

    a.label("top");
    a.iload(1);
    a.iload(2);
    a.if_icmpge("eof");
    a.iload(0);
    a.iload(1);
    a.iaload();
    a.istore(3);
    // whitespace
    a.iload(3);
    a.ifne("notspace");
    a.iinc(1, 1);
    a.goto("top");
    a.label("notspace");
    // identifier: letters then letters-or-digits
    a.iload(3);
    a.ldc(5);
    a.if_icmpge("notletter");
    a.ldc(1);
    a.istore(7);
    a.ldc(0);
    a.istore(6);
    a.label("ident");
    a.iload(1);
    a.iload(2);
    a.if_icmpge("emit");
    a.iload(0);
    a.iload(1);
    a.iaload();
    a.istore(3);
    a.iload(3);
    a.ifeq("emit");
    a.iload(3);
    a.ldc(7);
    a.if_icmpge("emit");
    a.iinc(6, 1);
    a.iinc(1, 1);
    a.goto("ident");
    a.label("notletter");
    // number: digits only
    a.iload(3);
    a.ldc(7);
    a.if_icmpge("notdigit");
    a.ldc(2);
    a.istore(7);
    a.ldc(0);
    a.istore(6);
    a.label("num");
    a.iload(1);
    a.iload(2);
    a.if_icmpge("emit");
    a.iload(0);
    a.iload(1);
    a.iaload();
    a.istore(3);
    a.iload(3);
    a.ldc(5);
    a.if_icmplt("emit");
    a.iload(3);
    a.ldc(7);
    a.if_icmpge("emit");
    a.iinc(6, 1);
    a.iinc(1, 1);
    a.goto("num");
    a.label("notdigit");
    // punctuation: single char token
    a.iload(3);
    a.ldc(7);
    a.if_icmpne("notpunct");
    a.ldc(4);
    a.istore(7);
    a.ldc(1);
    a.istore(6);
    a.iinc(1, 1);
    a.goto("emit");
    a.label("notpunct");
    // string: consume to matching quote
    a.iload(3);
    a.ldc(8);
    a.if_icmpne("comment");
    a.ldc(3);
    a.istore(7);
    a.ldc(0);
    a.istore(6);
    a.iinc(1, 1);
    a.label("str");
    a.iload(1);
    a.iload(2);
    a.if_icmpge("emit");
    a.iload(0);
    a.iload(1);
    a.iaload();
    a.istore(3);
    a.iinc(1, 1);
    a.iload(3);
    a.ldc(8);
    a.if_icmpeq("emit");
    a.iinc(6, 1);
    a.goto("str");
    a.label("comment");
    // comment: skip to whitespace, no token
    a.iinc(1, 1);
    a.label("cmt");
    a.iload(1);
    a.iload(2);
    a.if_icmpge("top");
    a.iload(0);
    a.iload(1);
    a.iaload();
    a.istore(3);
    a.iinc(1, 1);
    a.iload(3);
    a.ifne("cmt");
    a.goto("top");

    a.label("emit");
    // checksum = (checksum*31 + kind*8 + len) & 0xffff; ntok++
    a.iload(4);
    a.ldc(31);
    a.imul();
    a.iload(7);
    a.ldc(8);
    a.imul();
    a.iadd();
    a.iload(6);
    a.iadd();
    a.ldc(0xffff);
    a.iand();
    a.istore(4);
    a.iinc(5, 1);
    a.goto("top");

    a.label("eof");
    a.iload(4);
    a.iload(5);
    a.ldc(16);
    a.ishl();
    a.ixor();
    a.ireturn();
    a.end_method();

    // main: the Jack signature move — parse the same input 16 times.
    a.begin_static("Main", "main", 0, 3);
    // locals: 0 buf, 1 pass, 2 checksum
    a.ldc(228_001);
    a.putstatic("Main.seed");
    a.ldc(TEXT_LEN);
    a.invokestatic("Main.text");
    a.istore(0);
    a.ldc(0);
    a.istore(2);
    a.ldc(0);
    a.istore(1);
    a.label("passes");
    a.iload(1);
    a.ldc(PASSES);
    a.if_icmpge("report");
    a.iload(0);
    a.invokestatic("Main.scan");
    a.iload(2);
    a.iadd();
    a.istore(2);
    a.iinc(1, 1);
    a.goto("passes");
    a.label("report");
    a.iload(2);
    a.print_int();
    a.ret();
    a.end_method();

    a.link()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::run;
    use ivm_core::NullEvents;

    #[test]
    fn sixteen_passes_same_answer_each() {
        // XOR of 16 identical scans cancels to zero tokens info? No: XOR of
        // an even number of identical values is 0 — so flip to check the
        // program actually prints (the checksum may legitimately be 0).
        let out = run(&build(), &mut NullEvents, 100_000_000).expect("runs");
        assert!(out.text.ends_with('\n'));
        assert!(out.steps > 200_000);
    }
}
