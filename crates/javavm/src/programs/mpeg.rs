//! `_222_mpegaudio` analog: fixed-point subband synthesis.
//!
//! The decoder's time goes to windowed multiply-accumulate loops. This
//! analog runs an unrolled 8×8 fixed-point transform over a sample buffer —
//! very long basic blocks of `iaload`/`imul`/`ishr`/`iadd`, which is why
//! mpeg is the static-superinstruction showcase in the paper (Figure 15).

use crate::asm::{Asm, JavaImage};

const WINDOW: usize = 8;
const BUF_LEN: i64 = 1024;
const PASSES: i64 = 4;

/// Fixed-point cosine-ish coefficient table (scaled by 256), generated the
/// same way a codec would bake its tables.
fn coeff(k: usize, j: usize) -> i64 {
    // A deterministic integer pattern standing in for cos((2j+1)kπ/16)·256.
    let x = (2 * j + 1) * (k + 1);
    let folded = (x * 37) % 511;
    i64::from(i32::from(folded as i16) - 255)
}

/// Builds the benchmark image.
pub fn build() -> JavaImage {
    let mut a = Asm::new();
    a.class("Main", None, &[]);

    a.begin_static("Main", "next", 0, 1);
    a.getstatic("Main.seed");
    a.ldc(1103515245);
    a.imul();
    a.ldc(12345);
    a.iadd();
    a.ldc(0x7fffffff);
    a.iand();
    a.dup();
    a.putstatic("Main.seed");
    a.ireturn();
    a.end_method();

    // static int transform(int[] s, int base): one fully unrolled 8x8
    // fixed-point transform; returns the sum of the 8 outputs.
    a.begin_static("Main", "transform", 2, 4);
    // locals: 0 s, 1 base, 2 acc_total, 3 acc_k
    a.ldc(0);
    a.istore(2);
    for k in 0..WINDOW {
        a.ldc(0);
        a.istore(3);
        for j in 0..WINDOW {
            // acc_k += (s[base+j] * C[k][j]) >> 8
            a.iload(3);
            a.iload(0);
            a.iload(1);
            if j > 0 {
                a.ldc(j as i64);
                a.iadd();
            }
            a.iaload();
            a.ldc(coeff(k, j));
            a.imul();
            a.ldc(8);
            a.ishr();
            a.iadd();
            a.istore(3);
        }
        // acc_total = (acc_total + acc_k) & 0xffffff
        a.iload(2);
        a.iload(3);
        a.iadd();
        a.ldc(0xff_ffff);
        a.iand();
        a.istore(2);
    }
    a.iload(2);
    a.ireturn();
    a.end_method();

    // static int[] samples(int n)
    a.begin_static("Main", "samples", 1, 3);
    a.iload(0);
    a.newarray();
    a.istore(1);
    a.ldc(0);
    a.istore(2);
    a.label("fill");
    a.iload(2);
    a.iload(0);
    a.if_icmpge("filled");
    a.iload(1);
    a.iload(2);
    a.invokestatic("Main.next");
    a.ldc(512);
    a.irem();
    a.ldc(256);
    a.isub();
    a.iastore();
    a.iinc(2, 1);
    a.goto("fill");
    a.label("filled");
    a.iload(1);
    a.ireturn();
    a.end_method();

    // main: PASSES sweeps of the transform over the buffer.
    a.begin_static("Main", "main", 0, 4);
    // locals: 0 buf, 1 checksum, 2 pass, 3 base
    a.ldc(480_001);
    a.putstatic("Main.seed");
    a.ldc(BUF_LEN);
    a.invokestatic("Main.samples");
    a.istore(0);
    a.ldc(0);
    a.istore(1);
    a.ldc(0);
    a.istore(2);
    a.label("pass");
    a.iload(2);
    a.ldc(PASSES);
    a.if_icmpge("done");
    a.ldc(0);
    a.istore(3);
    a.label("window");
    a.iload(3);
    a.ldc(BUF_LEN - WINDOW as i64);
    a.if_icmpge("nextpass");
    a.iload(0);
    a.iload(3);
    a.invokestatic("Main.transform");
    a.iload(1);
    a.iadd();
    a.ldc(0xff_ffff);
    a.iand();
    a.istore(1);
    a.iinc(3, WINDOW as i32);
    a.goto("window");
    a.label("nextpass");
    a.iinc(2, 1);
    a.goto("pass");
    a.label("done");
    a.iload(1);
    a.print_int();
    a.ret();
    a.end_method();

    a.link()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::run;
    use ivm_core::NullEvents;

    #[test]
    fn long_basic_blocks() {
        // The unrolled transform should make mpeg's average block length
        // far larger than a call-heavy program's.
        let image = build();
        let blocks: Vec<usize> = image.program.blocks().map(|b| b.len()).collect();
        let max = blocks.iter().copied().max().unwrap_or(0);
        assert!(max > 50, "expected an unrolled block, longest is {max}");
    }

    #[test]
    fn runs_deterministically() {
        let a = run(&build(), &mut NullEvents, 100_000_000).expect("runs");
        let b = run(&build(), &mut NullEvents, 100_000_000).expect("runs");
        assert_eq!(a.text, b.text);
    }
}
