//! `_202_jess` analog: forward-chaining rule matching.
//!
//! A fact base of objects is repeatedly matched against join-style rules
//! (`f1.typ == A && f2.typ == B && f1.attr == f2.attr`), firing derived
//! facts until a budget is reached — the Rete-network flavour of Jess with
//! heavy `getfield` traffic and data-dependent branches.

use crate::asm::{Asm, JavaImage};

const INITIAL_FACTS: i64 = 60;
const MAX_FACTS: i64 = 400;
const ROUNDS: i64 = 6;

/// Builds the benchmark image.
pub fn build() -> JavaImage {
    let mut a = Asm::new();
    a.class("Fact", None, &["typ", "attr", "value"]);
    a.class("Main", None, &[]);

    a.begin_static("Main", "next", 0, 1);
    a.getstatic("Main.seed");
    a.ldc(1103515245);
    a.imul();
    a.ldc(12345);
    a.iadd();
    a.ldc(0x7fffffff);
    a.iand();
    a.dup();
    a.putstatic("Main.seed");
    a.ireturn();
    a.end_method();

    // static int assert_(int[] facts, int n, int typ, int attr, int value)
    // returns new n (drops the fact when the base is full).
    a.begin_static("Main", "assert_", 5, 7);
    // locals: 0 facts, 1 n, 2 typ, 3 attr, 4 value, 5 f
    a.iload(1);
    a.iload(0);
    a.arraylength();
    a.if_icmpge("full");
    a.new_object("Fact");
    a.istore(5);
    a.iload(5);
    a.iload(2);
    a.putfield("typ");
    a.iload(5);
    a.iload(3);
    a.putfield("attr");
    a.iload(5);
    a.iload(4);
    a.putfield("value");
    a.iload(0);
    a.iload(1);
    a.iload(5);
    a.iastore();
    a.iinc(1, 1);
    a.label("full");
    a.iload(1);
    a.ireturn();
    a.end_method();

    // static int round(int[] facts, int n): one match pass; fires rule
    //   typ1 ∧ typ2 ∧ attr-join → assert typ3 fact
    // and returns the new fact count.
    a.begin_static("Main", "round", 2, 8);
    // locals: 0 facts, 1 n, 2 i, 3 j, 4 f1, 5 f2, 6 limit, 7 fired
    a.iload(1);
    a.istore(6); // join only over the facts present at round start
    a.ldc(0);
    a.istore(7);
    a.ldc(0);
    a.istore(2);
    a.label("iloop");
    a.iload(2);
    a.iload(6);
    a.if_icmpge("done");
    a.iload(0);
    a.iload(2);
    a.iaload();
    a.istore(4);
    a.iload(4);
    a.getfield("typ");
    a.ldc(1);
    a.if_icmpne("inext");
    a.ldc(0);
    a.istore(3);
    a.label("jloop");
    a.iload(3);
    a.iload(6);
    a.if_icmpge("inext");
    a.iload(0);
    a.iload(3);
    a.iaload();
    a.istore(5);
    a.iload(5);
    a.getfield("typ");
    a.ldc(2);
    a.if_icmpne("jnext");
    a.iload(4);
    a.getfield("attr");
    a.iload(5);
    a.getfield("attr");
    a.if_icmpne("jnext");
    // fire: assert (3, (a1+1)%23, v1+v2)
    a.iload(0);
    a.iload(1);
    a.ldc(3);
    a.iload(4);
    a.getfield("attr");
    a.ldc(1);
    a.iadd();
    a.ldc(23);
    a.irem();
    a.iload(4);
    a.getfield("value");
    a.iload(5);
    a.getfield("value");
    a.iadd();
    a.ldc(0xffff);
    a.iand();
    a.invokestatic("Main.assert_");
    a.istore(1);
    a.iinc(7, 1);
    a.label("jnext");
    a.iinc(3, 1);
    a.goto("jloop");
    a.label("inext");
    a.iinc(2, 1);
    a.goto("iloop");
    a.label("done");
    a.iload(1);
    a.ireturn();
    a.end_method();

    // static int checksum(int[] facts, int n)
    a.begin_static("Main", "checksum", 2, 4);
    a.ldc(0);
    a.istore(3);
    a.ldc(0);
    a.istore(2);
    a.label("sum");
    a.iload(2);
    a.iload(1);
    a.if_icmpge("out");
    a.iload(3);
    a.iload(0);
    a.iload(2);
    a.iaload();
    a.getfield("value");
    a.iadd();
    a.ldc(0xffff);
    a.iand();
    a.istore(3);
    a.iinc(2, 1);
    a.goto("sum");
    a.label("out");
    a.iload(3);
    a.ireturn();
    a.end_method();

    // main
    a.begin_static("Main", "main", 0, 4);
    // locals: 0 facts, 1 n, 2 round, 3 scratch
    a.ldc(5_150);
    a.putstatic("Main.seed");
    a.ldc(MAX_FACTS);
    a.newarray();
    a.istore(0);
    a.ldc(0);
    a.istore(1);
    // seed the fact base with random type-1 and type-2 facts
    a.ldc(0);
    a.istore(2);
    a.label("seedloop");
    a.iload(2);
    a.ldc(INITIAL_FACTS);
    a.if_icmpge("run");
    a.iload(0);
    a.iload(1);
    a.invokestatic("Main.next");
    a.ldc(2);
    a.irem();
    a.ldc(1);
    a.iadd();
    a.invokestatic("Main.next");
    a.ldc(23);
    a.irem();
    a.invokestatic("Main.next");
    a.ldc(1000);
    a.irem();
    a.invokestatic("Main.assert_");
    a.istore(1);
    a.iinc(2, 1);
    a.goto("seedloop");
    a.label("run");
    a.ldc(0);
    a.istore(2);
    a.label("rounds");
    a.iload(2);
    a.ldc(ROUNDS);
    a.if_icmpge("report");
    a.iload(0);
    a.iload(1);
    a.invokestatic("Main.round");
    a.istore(1);
    a.iinc(2, 1);
    a.goto("rounds");
    a.label("report");
    a.iload(0);
    a.iload(1);
    a.invokestatic("Main.checksum");
    a.iload(1);
    a.ldc(16);
    a.ishl();
    a.ixor();
    a.print_int();
    a.ret();
    a.end_method();

    a.link()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::run;
    use ivm_core::NullEvents;

    #[test]
    fn fires_rules_and_terminates() {
        let out = run(&build(), &mut NullEvents, 100_000_000).expect("runs");
        assert!(!out.text.is_empty());
        assert!(out.allocations > i64::from(INITIAL_FACTS as i32) as u64);
    }
}
