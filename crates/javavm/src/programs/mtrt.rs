//! `_227_mtrt` analog: a fixed-point sphere ray tracer.
//!
//! The distinguishing feature reproduced here is the *large polymorphic
//! code footprint*: the scene contains 32 sphere variants, each with its
//! own `intersect` and `shade` method bodies (as a templated C++-style
//! scene graph would). Dynamic replication must copy all of it, which is
//! why mtrt is the benchmark where the paper's dynamic techniques drown in
//! I-cache misses and static superinstructions win (§7.2.2).

use crate::asm::{Asm, JavaImage};

/// Number of sphere subclasses (each with its own method bodies).
const VARIANTS: usize = 32;
/// Spheres in the scene.
const SPHERES: i64 = 48;
/// Image is SIZE×SIZE rays.
const SIZE: i64 = 16;

fn emit_intersect(a: &mut Asm, class: &str, salt: i64) {
    // int intersect(ox, oy, oz, dx, dy, dz) -> t (or -1)
    a.begin_virtual(class, "intersect", 6, 10);
    // locals: 0 this, 1..6 ray, 7 lx/tca, 8 ly/l2, 9 lz
    // lx = cx - ox, ...
    a.iload(0);
    a.getfield("cx");
    a.iload(1);
    a.isub();
    a.istore(7);
    a.iload(0);
    a.getfield("cy");
    a.iload(2);
    a.isub();
    a.istore(8);
    a.iload(0);
    a.getfield("cz");
    a.iload(3);
    a.isub();
    a.istore(9);
    // l2 = lx*lx + ly*ly + lz*lz  (kept in a fresh local)
    a.iload(7);
    a.iload(7);
    a.imul();
    a.iload(8);
    a.iload(8);
    a.imul();
    a.iadd();
    a.iload(9);
    a.iload(9);
    a.imul();
    a.iadd();
    // tca = (lx*dx + ly*dy + lz*dz) >> 8   (leave l2 on the stack)
    a.iload(7);
    a.iload(4);
    a.imul();
    a.iload(8);
    a.iload(5);
    a.imul();
    a.iadd();
    a.iload(9);
    a.iload(6);
    a.imul();
    a.iadd();
    a.ldc(8);
    a.ishr();
    a.istore(7); // tca
    a.istore(8); // l2
    a.iload(7);
    a.ifgt("ahead");
    a.ldc(-1);
    a.ireturn();
    a.label("ahead");
    // d2 = l2 - ((tca*tca) >> 4); miss if d2 > r2
    a.iload(8);
    a.iload(7);
    a.iload(7);
    a.imul();
    a.ldc(4);
    a.ishr();
    a.isub();
    a.iload(0);
    a.getfield("r2");
    a.if_icmple("hit");
    a.ldc(-1);
    a.ireturn();
    a.label("hit");
    // a per-variant constant folds into the returned distance
    a.iload(7);
    a.ldc(salt & 0xff);
    a.iadd();
    a.ldc(0x3fff);
    a.iand();
    a.ireturn();
    a.end_method();
}

fn emit_shade(a: &mut Asm, class: &str, salt: i64) {
    // int shade(t): a distinct unrolled lighting polynomial per variant.
    a.begin_virtual(class, "shade", 1, 3);
    a.iload(1);
    a.istore(2);
    for step in 0..6i64 {
        // s = ((s * c) + d) >> 3 & 0xffff
        a.iload(2);
        a.ldc((salt * 7 + step * 13) % 127 + 3);
        a.imul();
        a.ldc((salt * 11 + step * 5) % 255);
        a.iadd();
        a.ldc(3);
        a.ishr();
        a.ldc(0xffff);
        a.iand();
        a.istore(2);
    }
    a.iload(2);
    a.ireturn();
    a.end_method();
}

/// Builds the benchmark image.
pub fn build() -> JavaImage {
    let mut a = Asm::new();
    a.class("Sphere", None, &["cx", "cy", "cz", "r2"]);
    for k in 0..VARIANTS {
        let name = format!("Sphere{k}");
        a.class(&name, Some("Sphere"), &[]);
    }
    a.class("Main", None, &[]);

    for k in 0..VARIANTS {
        let name = format!("Sphere{k}");
        emit_intersect(&mut a, &name, k as i64);
        emit_shade(&mut a, &name, k as i64);
    }

    a.begin_static("Main", "next", 0, 1);
    a.getstatic("Main.seed");
    a.ldc(1103515245);
    a.imul();
    a.ldc(12345);
    a.iadd();
    a.ldc(0x7fffffff);
    a.iand();
    a.dup();
    a.putstatic("Main.seed");
    a.ireturn();
    a.end_method();

    // static void init(int[] scene): allocate spheres round-robin over the
    // variants with random centers. The per-variant allocation sites also
    // give the program many distinct quickable `new`/`putfield` sites.
    a.begin_static("Main", "init", 1, 4);
    // locals: 0 scene, 1 i, 2 ref, 3 slot
    a.ldc(0);
    a.istore(3);
    for k in 0..VARIANTS {
        let reps = (SPHERES as usize).div_ceil(VARIANTS);
        for _ in 0..reps {
            let name = format!("Sphere{k}");
            a.new_object(&name);
            a.istore(2);
            a.iload(2);
            a.invokestatic("Main.next");
            a.ldc(200);
            a.irem();
            a.putfield("cx");
            a.iload(2);
            a.invokestatic("Main.next");
            a.ldc(200);
            a.irem();
            a.putfield("cy");
            a.iload(2);
            a.invokestatic("Main.next");
            a.ldc(150);
            a.irem();
            a.ldc(60);
            a.iadd();
            a.putfield("cz");
            a.iload(2);
            a.invokestatic("Main.next");
            a.ldc(40_000);
            a.irem();
            a.putfield("r2");
            a.iload(0);
            a.iload(3);
            a.iload(2);
            a.iastore();
            a.iinc(3, 1);
        }
    }
    a.ret();
    a.end_method();

    // static int trace(int[] scene, int px, int py): nearest hit shaded.
    a.begin_static("Main", "trace", 3, 10);
    // locals: 0 scene, 1 px, 2 py, 3 i, 4 best_t, 5 best_i, 6 t, 7 n
    a.ldc(0x3fff);
    a.istore(4);
    a.ldc(-1);
    a.istore(5);
    a.iload(0);
    a.arraylength();
    a.istore(7);
    a.ldc(0);
    a.istore(3);
    a.label("objloop");
    a.iload(3);
    a.iload(7);
    a.if_icmpge("shade");
    a.iload(0);
    a.iload(3);
    a.iaload();
    // ray origin (0,0,0), direction derived from pixel
    a.ldc(0);
    a.ldc(0);
    a.ldc(0);
    a.iload(1);
    a.ldc(16);
    a.imul();
    a.ldc(128);
    a.isub();
    a.iload(2);
    a.ldc(16);
    a.imul();
    a.ldc(128);
    a.isub();
    a.ldc(256);
    a.invokevirtual("intersect");
    a.istore(6);
    a.iload(6);
    a.iflt("nexto");
    a.iload(6);
    a.iload(4);
    a.if_icmpge("nexto");
    a.iload(6);
    a.istore(4);
    a.iload(3);
    a.istore(5);
    a.label("nexto");
    a.iinc(3, 1);
    a.goto("objloop");
    a.label("shade");
    a.iload(5);
    a.iflt("sky");
    a.iload(0);
    a.iload(5);
    a.iaload();
    a.iload(4);
    a.invokevirtual("shade");
    a.ireturn();
    a.label("sky");
    a.iload(1);
    a.iload(2);
    a.ixor();
    a.ldc(0xff);
    a.iand();
    a.ireturn();
    a.end_method();

    // main: render SIZE×SIZE rays.
    a.begin_static("Main", "main", 0, 4);
    // locals: 0 scene, 1 px, 2 py, 3 checksum
    a.ldc(227_001);
    a.putstatic("Main.seed");
    // Exactly what `init` fills: round-robin over the variants.
    a.ldc((VARIANTS * (SPHERES as usize).div_ceil(VARIANTS)) as i64);
    a.newarray();
    a.istore(0);
    a.iload(0);
    a.invokestatic("Main.init");
    a.ldc(0);
    a.istore(3);
    a.ldc(0);
    a.istore(2);
    a.label("rows");
    a.iload(2);
    a.ldc(SIZE);
    a.if_icmpge("report");
    a.ldc(0);
    a.istore(1);
    a.label("cols");
    a.iload(1);
    a.ldc(SIZE);
    a.if_icmpge("nextrow");
    a.iload(0);
    a.iload(1);
    a.iload(2);
    a.invokestatic("Main.trace");
    a.iload(3);
    a.iadd();
    a.ldc(0xff_ffff);
    a.iand();
    a.istore(3);
    a.iinc(1, 1);
    a.goto("cols");
    a.label("nextrow");
    a.iinc(2, 1);
    a.goto("rows");
    a.label("report");
    a.iload(3);
    a.print_int();
    a.ret();
    a.end_method();

    a.link()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::run;
    use ivm_core::NullEvents;

    #[test]
    fn big_code_footprint() {
        let image = build();
        // 32 variants x (intersect + shade) should dominate the instance
        // count — the mtrt signature.
        assert!(image.program.len() > 2500, "len = {}", image.program.len());
    }

    #[test]
    fn renders() {
        let out = run(&build(), &mut NullEvents, 100_000_000).expect("runs");
        assert!(!out.text.is_empty());
        assert!(out.allocations >= SPHERES as u64);
    }
}
