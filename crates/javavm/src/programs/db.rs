//! `_209_db` analog: an in-memory database of record objects.
//!
//! Inserts records, shell-sorts them through a virtual comparator, and runs
//! probe queries — `getfield`/`invokevirtual` pressure, the object-heavy
//! end of the suite.

use crate::asm::{Asm, JavaImage};

const RECORDS: i64 = 160;
const QUERIES: i64 = 400;

/// Builds the benchmark image.
pub fn build() -> JavaImage {
    let mut a = Asm::new();
    a.class("Record", None, &["id", "payment", "extra"]);
    a.class("Main", None, &[]);

    a.begin_static("Main", "next", 0, 1);
    a.getstatic("Main.seed");
    a.ldc(1103515245);
    a.imul();
    a.ldc(12345);
    a.iadd();
    a.ldc(0x7fffffff);
    a.iand();
    a.dup();
    a.putstatic("Main.seed");
    a.ireturn();
    a.end_method();

    // Record.compareTo(other): this.payment - other.payment
    a.begin_virtual("Record", "compareTo", 1, 2);
    a.iload(0);
    a.getfield("payment");
    a.iload(1);
    a.getfield("payment");
    a.isub();
    a.ireturn();
    a.end_method();

    // Record.key(): id
    a.begin_virtual("Record", "key", 0, 1);
    a.iload(0);
    a.getfield("id");
    a.ireturn();
    a.end_method();

    // static int[] build(int n): array of record refs
    a.begin_static("Main", "build", 1, 4);
    // locals: 0 n, 1 arr, 2 i, 3 rec
    a.iload(0);
    a.newarray();
    a.istore(1);
    a.ldc(0);
    a.istore(2);
    a.label("fill");
    a.iload(2);
    a.iload(0);
    a.if_icmpge("filled");
    a.new_object("Record");
    a.istore(3);
    a.iload(3);
    a.iload(2);
    a.putfield("id");
    a.iload(3);
    a.invokestatic("Main.next");
    a.ldc(10_000);
    a.irem();
    a.putfield("payment");
    a.iload(3);
    a.invokestatic("Main.next");
    a.ldc(97);
    a.irem();
    a.putfield("extra");
    a.iload(1);
    a.iload(2);
    a.iload(3);
    a.iastore();
    a.iinc(2, 1);
    a.goto("fill");
    a.label("filled");
    a.iload(1);
    a.ireturn();
    a.end_method();

    // static void sort(int[] arr): shell sort by compareTo
    a.begin_static("Main", "sort", 1, 6);
    // locals: 0 arr, 1 gap, 2 i, 3 j, 4 tmp, 5 n
    a.iload(0);
    a.arraylength();
    a.istore(5);
    a.iload(5);
    a.ldc(2);
    a.idiv();
    a.istore(1);
    a.label("gaploop");
    a.iload(1);
    a.ifle("sorted");
    a.iload(1);
    a.istore(2);
    a.label("iloop");
    a.iload(2);
    a.iload(5);
    a.if_icmpge("nextgap");
    a.iload(0);
    a.iload(2);
    a.iaload();
    a.istore(4); // tmp = arr[i]
    a.iload(2);
    a.istore(3); // j = i
    a.label("jloop");
    a.iload(3);
    a.iload(1);
    a.if_icmplt("insert");
    // while j >= gap && arr[j-gap].compareTo(tmp) > 0
    a.iload(0);
    a.iload(3);
    a.iload(1);
    a.isub();
    a.iaload();
    a.iload(4);
    a.invokevirtual("compareTo");
    a.ifle("insert");
    // arr[j] = arr[j-gap]
    a.iload(0);
    a.iload(3);
    a.iload(0);
    a.iload(3);
    a.iload(1);
    a.isub();
    a.iaload();
    a.iastore();
    a.iload(3);
    a.iload(1);
    a.isub();
    a.istore(3);
    a.goto("jloop");
    a.label("insert");
    a.iload(0);
    a.iload(3);
    a.iload(4);
    a.iastore();
    a.iinc(2, 1);
    a.goto("iloop");
    a.label("nextgap");
    a.iload(1);
    a.ldc(2);
    a.idiv();
    a.istore(1);
    a.goto("gaploop");
    a.label("sorted");
    a.ret();
    a.end_method();

    // static int probe(int[] arr, int q): linear scan summing matching
    // extras (the original db does repeated scans too).
    a.begin_static("Main", "probe", 2, 5);
    // locals: 0 arr, 1 q, 2 i, 3 sum, 4 n
    a.ldc(0);
    a.istore(3);
    a.ldc(0);
    a.istore(2);
    a.iload(0);
    a.arraylength();
    a.istore(4);
    a.label("scan");
    a.iload(2);
    a.iload(4);
    a.if_icmpge("done");
    a.iload(0);
    a.iload(2);
    a.iaload();
    a.getfield("extra");
    a.iload(1);
    a.if_icmpne("skip");
    a.iload(0);
    a.iload(2);
    a.iaload();
    a.invokevirtual("key");
    a.iload(3);
    a.iadd();
    a.ldc(0xffff);
    a.iand();
    a.istore(3);
    a.label("skip");
    a.iinc(2, 1);
    a.goto("scan");
    a.label("done");
    a.iload(3);
    a.ireturn();
    a.end_method();

    // main
    a.begin_static("Main", "main", 0, 4);
    // locals: 0 arr, 1 checksum, 2 q, 3 first
    a.ldc(77_001);
    a.putstatic("Main.seed");
    a.ldc(RECORDS);
    a.invokestatic("Main.build");
    a.istore(0);
    a.iload(0);
    a.invokestatic("Main.sort");
    a.ldc(0);
    a.istore(1);
    a.ldc(0);
    a.istore(2);
    a.label("qloop");
    a.iload(2);
    a.ldc(QUERIES);
    a.if_icmpge("report");
    a.iload(0);
    a.iload(2);
    a.ldc(97);
    a.irem();
    a.invokestatic("Main.probe");
    a.iload(1);
    a.ixor();
    a.istore(1);
    a.iinc(2, 1);
    a.goto("qloop");
    a.label("report");
    // checksum + payment of the first (smallest) record
    a.iload(0);
    a.ldc(0);
    a.iaload();
    a.getfield("payment");
    a.iload(1);
    a.iadd();
    a.print_int();
    a.ret();
    a.end_method();

    a.link()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::run;
    use ivm_core::NullEvents;

    #[test]
    fn sorts_and_probes() {
        let out = run(&build(), &mut NullEvents, 100_000_000).expect("runs");
        assert!(!out.text.is_empty());
        assert!(out.allocations > 100, "allocates record objects");
        assert!(out.quickenings >= 8, "field and virtual sites quicken");
    }
}
