//! `_201_compress` analog: LZW compression over a synthetic buffer.
//!
//! The hot loop hashes `(prefix, symbol)` pairs into an open-addressing
//! dictionary — long basic blocks of array and arithmetic bytecode, very
//! little object work, matching the original's profile.

use crate::asm::{Asm, JavaImage};

const INPUT_LEN: i64 = 6_000;
const HASH_SIZE: i64 = 4096;

/// Builds the benchmark image.
pub fn build() -> JavaImage {
    let mut a = Asm::new();
    a.class("Main", None, &[]);

    // static int seed; static int next() { ... LCG ... }
    a.begin_static("Main", "next", 0, 1);
    a.getstatic("Main.seed");
    a.ldc(1103515245);
    a.imul();
    a.ldc(12345);
    a.iadd();
    a.ldc(0x7fffffff);
    a.iand();
    a.dup();
    a.putstatic("Main.seed");
    a.ireturn();
    a.end_method();

    // static int[] gen(int n): input buffer of 6-bit symbols with runs
    // (runs make LZW actually find matches).
    a.begin_static("Main", "gen", 1, 5);
    // locals: 0 n, 1 buf, 2 i, 3 sym, 4 runlen
    a.iload(0);
    a.newarray();
    a.istore(1);
    a.ldc(0);
    a.istore(2);
    a.label("outer");
    a.iload(2);
    a.iload(0);
    a.if_icmpge("done");
    a.invokestatic("Main.next");
    a.ldc(64);
    a.irem();
    a.istore(3);
    a.invokestatic("Main.next");
    a.ldc(6);
    a.irem();
    a.ldc(1);
    a.iadd();
    a.istore(4);
    a.label("run");
    a.iload(2);
    a.iload(0);
    a.if_icmpge("done");
    a.iload(4);
    a.ifle("outer");
    a.iload(1);
    a.iload(2);
    a.iload(3);
    a.iastore();
    a.iinc(2, 1);
    a.iinc(4, -1);
    a.goto("run");
    a.label("done");
    a.iload(1);
    a.ireturn();
    a.end_method();

    // static int compress(int[] input): returns packed (checksum<<8)^codes
    a.begin_static("Main", "compress", 1, 12);
    // locals: 0 input, 1 hkey, 2 hval, 3 ncodes, 4 outcount, 5 checksum,
    //         6 prefix, 7 i, 8 ch, 9 key, 10 h, 11 n
    a.ldc(HASH_SIZE);
    a.newarray();
    a.istore(1);
    a.ldc(HASH_SIZE);
    a.newarray();
    a.istore(2);
    a.ldc(64);
    a.istore(3);
    a.ldc(0);
    a.istore(4);
    a.ldc(0);
    a.istore(5);
    a.iload(0);
    a.arraylength();
    a.istore(11);
    a.iload(0);
    a.ldc(0);
    a.iaload();
    a.istore(6);
    a.ldc(1);
    a.istore(7);

    a.label("loop");
    a.iload(7);
    a.iload(11);
    a.if_icmpge("flush");
    // ch = input[i]
    a.iload(0);
    a.iload(7);
    a.iaload();
    a.istore(8);
    // key = prefix*64 + ch + 1
    a.iload(6);
    a.ldc(64);
    a.imul();
    a.iload(8);
    a.iadd();
    a.ldc(1);
    a.iadd();
    a.istore(9);
    // h = (key * 31) & (HASH_SIZE-1)
    a.iload(9);
    a.ldc(31);
    a.imul();
    a.ldc(HASH_SIZE - 1);
    a.iand();
    a.istore(10);
    // probe
    a.label("probe");
    a.iload(1);
    a.iload(10);
    a.iaload();
    a.ifeq("miss"); // empty slot
    a.iload(1);
    a.iload(10);
    a.iaload();
    a.iload(9);
    a.if_icmpeq("hit");
    a.iload(10);
    a.ldc(1);
    a.iadd();
    a.ldc(HASH_SIZE - 1);
    a.iand();
    a.istore(10);
    a.goto("probe");

    a.label("hit");
    // prefix = hval[h]
    a.iload(2);
    a.iload(10);
    a.iaload();
    a.istore(6);
    a.goto("next");

    a.label("miss");
    // emit prefix
    a.iload(5);
    a.iload(6);
    a.iadd();
    a.ldc(0xffff);
    a.iand();
    a.istore(5);
    a.iinc(4, 1);
    // insert if room
    a.iload(3);
    a.ldc(HASH_SIZE);
    a.if_icmpge("noinsert");
    a.iload(1);
    a.iload(10);
    a.iload(9);
    a.iastore();
    a.iload(2);
    a.iload(10);
    a.iload(3);
    a.iastore();
    a.iinc(3, 1);
    a.label("noinsert");
    a.iload(8);
    a.istore(6);

    a.label("next");
    a.iinc(7, 1);
    a.goto("loop");

    a.label("flush");
    a.iload(5);
    a.iload(6);
    a.iadd();
    a.ldc(0xffff);
    a.iand();
    a.ldc(8);
    a.ishl();
    a.iload(4);
    a.ixor();
    a.ireturn();
    a.end_method();

    // main: generate, compress twice (the original compresses files
    // repeatedly), print.
    a.begin_static("Main", "main", 0, 2);
    a.ldc(20_000_601);
    a.putstatic("Main.seed");
    a.ldc(INPUT_LEN);
    a.invokestatic("Main.gen");
    a.istore(0);
    a.ldc(0);
    a.istore(1);
    a.iload(0);
    a.invokestatic("Main.compress");
    a.iload(1);
    a.iadd();
    a.istore(1);
    a.iload(0);
    a.invokestatic("Main.compress");
    a.ldc(3);
    a.imul();
    a.iload(1);
    a.iadd();
    a.istore(1);
    a.iload(1);
    a.print_int();
    a.ret();
    a.end_method();

    a.link()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::run;
    use ivm_core::NullEvents;

    #[test]
    fn deterministic_output() {
        let a = run(&build(), &mut NullEvents, 100_000_000).expect("runs");
        let b = run(&build(), &mut NullEvents, 100_000_000).expect("runs");
        assert_eq!(a.text, b.text);
        assert!(a.steps > 100_000, "compress should be array-loop heavy: {}", a.steps);
    }
}
