//! A bytecode assembler for the mini-JVM: classes, methods, labels.
//!
//! Benchmarks are written directly against this assembler — the moral
//! equivalent of authoring class files. `link` produces a [`JavaImage`]
//! whose boot code invokes `Main.main` and halts.

use std::collections::HashMap;

use ivm_core::{OpId, ProgramCode};

use crate::inst::{ops, JavaOps};

/// Index into [`JavaImage::classes`].
pub type ClassId = u16;
/// Index into [`JavaImage::methods`].
pub type MethodId = u16;

/// A loaded class: name, superclass and instance field names (appended
/// after the superclass's fields in object layout).
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Single-inheritance parent.
    pub super_class: Option<ClassId>,
    /// Field names declared by this class (not including inherited ones).
    pub fields: Vec<String>,
}

/// A method: owning class, arity, locals and entry instance.
#[derive(Debug, Clone)]
pub struct MethodDef {
    /// Method name.
    pub name: String,
    /// Owning class.
    pub class: ClassId,
    /// Declared arguments (for virtual methods, *excluding* `this`).
    pub nargs: usize,
    /// Total local slots (arguments first, then scratch locals).
    pub nlocals: usize,
    /// Entry instance index in the program.
    pub entry: u32,
    /// Whether the method is static.
    pub is_static: bool,
}

/// An exception handler range: instances `from..to` are protected; a throw
/// inside them transfers to `handler`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandlerRange {
    /// First protected instance.
    pub from: u32,
    /// One past the last protected instance.
    pub to: u32,
    /// Handler entry instance (receives the exception ref on the stack).
    pub handler: u32,
}

/// A resolved `tableswitch` jump table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchTable {
    /// Targets for selector values `0..targets.len()`.
    pub targets: Vec<u32>,
    /// Target for out-of-range selectors.
    pub default: u32,
}

/// A linked mini-JVM program.
#[derive(Debug, Clone)]
pub struct JavaImage {
    /// Instruction stream and control structure.
    pub program: ProgramCode,
    /// Per-instance operand (constant, local index, name id...).
    pub operands: Vec<i64>,
    /// Class table.
    pub classes: Vec<ClassDef>,
    /// Method table.
    pub methods: Vec<MethodDef>,
    /// Interned symbolic names (fields, virtual methods): id → name.
    pub names: Vec<String>,
    /// Number of static variable slots.
    pub n_statics: usize,
    /// Exception handler table (innermost-last, searched back to front).
    pub handlers: Vec<HandlerRange>,
    /// `tableswitch` jump tables, indexed by instruction operand.
    pub switch_tables: Vec<SwitchTable>,
    /// Entry instance (boot code).
    pub entry: usize,
}

impl JavaImage {
    /// Finds a method by `"Class.name"`.
    pub fn find_method(&self, qualified: &str) -> Option<MethodId> {
        let (cls, name) = qualified.split_once('.')?;
        let class = self.classes.iter().position(|c| c.name == cls)? as ClassId;
        self.methods.iter().position(|m| m.class == class && m.name == name).map(|i| i as MethodId)
    }

    /// Resolves a virtual method by receiver class and name id, walking the
    /// superclass chain.
    pub fn resolve_virtual(&self, class: ClassId, name_id: usize) -> Option<MethodId> {
        let name = &self.names[name_id];
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(i) =
                self.methods.iter().position(|m| m.class == c && !m.is_static && &m.name == name)
            {
                return Some(i as MethodId);
            }
            cur = self.classes[c as usize].super_class;
        }
        None
    }

    /// Resolves a field name id to its offset in instances of `class`.
    pub fn resolve_field(&self, class: ClassId, name_id: usize) -> Option<usize> {
        let layout = self.field_layout(class);
        let name = &self.names[name_id];
        layout.iter().position(|f| f == name)
    }

    /// Full field layout of `class` (inherited fields first).
    pub fn field_layout(&self, class: ClassId) -> Vec<String> {
        let c = &self.classes[class as usize];
        let mut layout = match c.super_class {
            Some(s) => self.field_layout(s),
            None => Vec::new(),
        };
        layout.extend(c.fields.iter().cloned());
        layout
    }

    /// Number of fields in instances of `class`.
    pub fn instance_size(&self, class: ClassId) -> usize {
        self.field_layout(class).len()
    }
}

/// The assembler.
///
/// # Examples
///
/// ```
/// use ivm_java::Asm;
///
/// let mut a = Asm::new();
/// a.class("Main", None, &[]);
/// a.begin_static("Main", "main", 0, 1);
/// a.ldc(21);
/// a.ldc(2);
/// a.imul();
/// a.print_int();
/// a.ret();
/// a.end_method();
/// let image = a.link();
/// assert!(image.find_method("Main.main").is_some());
/// ```
#[derive(Debug)]
pub struct Asm {
    o: &'static JavaOps,
    program: ivm_core::ProgramBuilder,
    operands: Vec<i64>,
    classes: Vec<ClassDef>,
    methods: Vec<MethodDef>,
    names: Vec<String>,
    name_ids: HashMap<String, usize>,
    statics: HashMap<String, usize>,
    labels: HashMap<String, u32>,
    label_fixups: Vec<(u32, String)>,
    method_fixups: Vec<(u32, String)>,
    handler_fixups: Vec<(String, String, String)>,
    switch_fixups: Vec<(Vec<String>, String)>,
    current: Option<MethodId>,
    boot_call: u32,
}

impl Default for Asm {
    fn default() -> Self {
        Self::new()
    }
}

impl Asm {
    /// Creates an empty assembly with boot code reserved.
    pub fn new() -> Self {
        let o = ops();
        let mut program = ProgramCode::builder("java-program");
        let boot_call = program.push(o.invokestatic, None);
        program.push(o.halt, None);
        Self {
            o,
            program,
            operands: vec![0, 0],
            classes: Vec::new(),
            methods: Vec::new(),
            names: Vec::new(),
            name_ids: HashMap::new(),
            statics: HashMap::new(),
            labels: HashMap::new(),
            label_fixups: Vec::new(),
            method_fixups: Vec::new(),
            handler_fixups: Vec::new(),
            switch_fixups: Vec::new(),
            current: None,
            boot_call,
        }
    }

    /// Declares a class.
    ///
    /// # Panics
    ///
    /// Panics if the superclass is unknown or the name is duplicated.
    pub fn class(&mut self, name: &str, super_class: Option<&str>, fields: &[&str]) -> ClassId {
        assert!(self.classes.iter().all(|c| c.name != name), "duplicate class {name}");
        let super_class = super_class.map(|s| self.class_id(s));
        let id = self.classes.len() as ClassId;
        self.classes.push(ClassDef {
            name: name.to_owned(),
            super_class,
            fields: fields.iter().map(|&f| f.to_owned()).collect(),
        });
        id
    }

    fn class_id(&self, name: &str) -> ClassId {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("unknown class {name}")) as ClassId
    }

    fn intern(&mut self, name: &str) -> usize {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = self.names.len();
        self.names.push(name.to_owned());
        self.name_ids.insert(name.to_owned(), id);
        id
    }

    fn begin(&mut self, class: &str, name: &str, nargs: usize, nlocals: usize, is_static: bool) {
        assert!(self.current.is_none(), "method {name} opened inside another method");
        let class = self.class_id(class);
        let entry = self.program.len() as u32;
        self.program.mark_entry(entry);
        let id = self.methods.len() as MethodId;
        let slots = nargs + usize::from(!is_static);
        self.methods.push(MethodDef {
            name: name.to_owned(),
            class,
            nargs,
            nlocals: nlocals.max(slots),
            entry,
            is_static,
        });
        self.current = Some(id);
    }

    /// Opens a static method; emit its body, then call [`Asm::end_method`].
    pub fn begin_static(&mut self, class: &str, name: &str, nargs: usize, nlocals: usize) {
        self.begin(class, name, nargs, nlocals, true);
    }

    /// Opens a virtual method (`this` is local 0; `nargs` excludes it).
    pub fn begin_virtual(&mut self, class: &str, name: &str, nargs: usize, nlocals: usize) {
        self.begin(class, name, nargs, nlocals, false);
    }

    /// Closes the current method.
    ///
    /// # Panics
    ///
    /// Panics if no method is open.
    pub fn end_method(&mut self) {
        assert!(self.current.take().is_some(), "no open method");
    }

    fn emit(&mut self, op: OpId, operand: i64) -> u32 {
        assert!(self.current.is_some(), "instruction outside a method body");
        let i = self.program.push(op, None);
        self.operands.push(operand);
        i
    }

    fn emit_branch(&mut self, op: OpId, label: &str) {
        let cur = self.current.expect("in method");
        let i = self.emit(op, 0);
        self.label_fixups.push((i, format!("{cur}:{label}")));
    }

    /// Registers an exception handler: throws between the labels `from`
    /// (inclusive) and `to` (exclusive) transfer to the label `handler`,
    /// with the exception reference pushed on the operand stack. All three
    /// labels are method-local; inner handlers must be registered after
    /// outer ones.
    pub fn protect(&mut self, from: &str, to: &str, handler: &str) {
        let cur = self.current.expect("in method");
        self.handler_fixups.push((
            format!("{cur}:{from}"),
            format!("{cur}:{to}"),
            format!("{cur}:{handler}"),
        ));
    }

    /// Throws the exception object on top of the stack.
    pub fn athrow(&mut self) {
        let op = self.o.athrow;
        self.emit(op, 0);
    }

    /// Emits a `tableswitch`: pops a selector and jumps to
    /// `cases[selector]`, or to `default` when out of range. Labels are
    /// method-local.
    pub fn tableswitch(&mut self, cases: &[&str], default: &str) {
        let cur = self.current.expect("in method");
        let table_id = self.switch_fixups.len() as i64;
        let op = self.o.tableswitch;
        self.emit(op, table_id);
        self.switch_fixups.push((
            cases.iter().map(|c| format!("{cur}:{c}")).collect(),
            format!("{cur}:{default}"),
        ));
    }

    /// Defines a method-local label at the current position.
    pub fn label(&mut self, name: &str) {
        let cur = self.current.expect("in method");
        let prev = self.labels.insert(format!("{cur}:{name}"), self.program.len() as u32);
        assert!(prev.is_none(), "duplicate label {name}");
    }

    /// Links everything into an executable image.
    ///
    /// # Panics
    ///
    /// Panics on unresolved labels or methods, or if `Main.main` is missing.
    pub fn link(mut self) -> JavaImage {
        assert!(self.current.is_none(), "unterminated method");
        for (inst, key) in std::mem::take(&mut self.label_fixups) {
            let target = *self.labels.get(&key).unwrap_or_else(|| panic!("undefined label {key}"));
            self.program.patch_target(inst, target);
        }
        let method_fixups = std::mem::take(&mut self.method_fixups);
        let handlers: Vec<HandlerRange> = std::mem::take(&mut self.handler_fixups)
            .into_iter()
            .map(|(from, to, handler)| {
                let resolve = |key: &str| {
                    *self.labels.get(key).unwrap_or_else(|| panic!("undefined handler label {key}"))
                };
                let range = HandlerRange {
                    from: resolve(&from),
                    to: resolve(&to),
                    handler: resolve(&handler),
                };
                assert!(range.from < range.to, "empty protected range {from}..{to}");
                self.program.mark_entry(range.handler);
                range
            })
            .collect();
        let switch_tables: Vec<SwitchTable> = std::mem::take(&mut self.switch_fixups)
            .into_iter()
            .map(|(cases, default)| {
                let mut resolve = |key: &str| {
                    let t = *self
                        .labels
                        .get(key)
                        .unwrap_or_else(|| panic!("undefined switch label {key}"));
                    self.program.mark_entry(t);
                    t
                };
                SwitchTable {
                    targets: cases.iter().map(|c| resolve(c)).collect(),
                    default: resolve(&default),
                }
            })
            .collect();
        let mut image = JavaImage {
            program: ProgramCode::builder("placeholder").into_placeholder(),
            operands: self.operands,
            classes: self.classes,
            methods: self.methods,
            names: self.names,
            n_statics: self.statics.len(),
            handlers,
            switch_tables,
            entry: 0,
        };
        // Resolve invokestatic targets now that all methods exist.
        for (inst, qualified) in method_fixups {
            let (cls, name) = qualified
                .split_once('.')
                .unwrap_or_else(|| panic!("bad method reference {qualified}"));
            let class = image
                .classes
                .iter()
                .position(|c| c.name == cls)
                .unwrap_or_else(|| panic!("unknown class {cls}"))
                as ClassId;
            let m = image
                .methods
                .iter()
                .find(|m| m.class == class && m.name == name && m.is_static)
                .unwrap_or_else(|| panic!("unknown static method {qualified}"));
            self.program.patch_target(inst, m.entry);
        }
        // Boot: call Main.main.
        let main = image
            .methods
            .iter()
            .find(|m| {
                m.is_static && m.name == "main" && image.classes[m.class as usize].name == "Main"
            })
            .expect("program must define static Main.main");
        self.program.patch_target(self.boot_call, main.entry);
        image.program = self.program.finish(&self.o.spec);
        image
    }
}

// A tiny helper so `link` can build the struct before the program is final.
trait Placeholder {
    fn into_placeholder(self) -> ProgramCode;
}

impl Placeholder for ivm_core::ProgramBuilder {
    fn into_placeholder(mut self) -> ProgramCode {
        let o = ops();
        self.push(o.halt, None);
        self.finish(&o.spec)
    }
}

macro_rules! simple_emitters {
    ($(($fn_name:ident, $field:ident, $doc:literal)),+ $(,)?) => {
        impl Asm {
            $(
                #[doc = $doc]
                pub fn $fn_name(&mut self) {
                    let op = self.o.$field;
                    self.emit(op, 0);
                }
            )+
        }
    };
}

simple_emitters![
    (pop, pop, "Discards the top of stack."),
    (dup, dup, "Duplicates the top of stack."),
    (dup_x1, dup_x1, "Duplicates the top under the second item."),
    (swap, swap, "Swaps the top two items."),
    (iadd, iadd, "Integer add."),
    (isub, isub, "Integer subtract."),
    (imul, imul, "Integer multiply."),
    (idiv, idiv, "Integer divide."),
    (irem, irem, "Integer remainder."),
    (ineg, ineg, "Integer negate."),
    (ishl, ishl, "Shift left."),
    (ishr, ishr, "Arithmetic shift right."),
    (iand, iand, "Bitwise and."),
    (ior, ior, "Bitwise or."),
    (ixor, ixor, "Bitwise xor."),
    (newarray, newarray, "Pops a length, pushes a new int array."),
    (iaload, iaload, "Pops index and array ref, pushes the element."),
    (iastore, iastore, "Pops value, index, array ref; stores the element."),
    (arraylength, arraylength, "Pops an array ref, pushes its length."),
    (print_int, print_int, "Pops and prints an integer (runtime call)."),
    (ireturn, ireturn, "Returns the top of stack to the caller."),
];

macro_rules! branch_emitters {
    ($(($fn_name:ident, $field:ident, $doc:literal)),+ $(,)?) => {
        impl Asm {
            $(
                #[doc = $doc]
                pub fn $fn_name(&mut self, label: &str) {
                    let op = self.o.$field;
                    self.emit_branch(op, label);
                }
            )+
        }
    };
}

branch_emitters![
    (ifeq, ifeq, "Branches if the popped value is zero."),
    (ifne, ifne, "Branches if the popped value is non-zero."),
    (iflt, iflt, "Branches if the popped value is negative."),
    (ifge, ifge, "Branches if the popped value is non-negative."),
    (ifgt, ifgt, "Branches if the popped value is positive."),
    (ifle, ifle, "Branches if the popped value is non-positive."),
    (if_icmpeq, if_icmpeq, "Branches if the two popped values are equal."),
    (if_icmpne, if_icmpne, "Branches if the two popped values differ."),
    (if_icmplt, if_icmplt, "Branches if second-popped < top-popped."),
    (if_icmpge, if_icmpge, "Branches if second-popped >= top-popped."),
    (if_icmpgt, if_icmpgt, "Branches if second-popped > top-popped."),
    (if_icmple, if_icmple, "Branches if second-popped <= top-popped."),
    (goto, goto_, "Unconditional branch."),
];

impl Asm {
    /// Pushes a constant.
    pub fn ldc(&mut self, v: i64) {
        let op = self.o.ldc;
        self.emit(op, v);
    }

    /// Loads local `idx` (uses the specialized `iload_0..3` forms when
    /// possible, as javac does).
    pub fn iload(&mut self, idx: usize) {
        let op = match idx {
            0 => self.o.iload_0,
            1 => self.o.iload_1,
            2 => self.o.iload_2,
            3 => self.o.iload_3,
            _ => self.o.iload,
        };
        self.emit(op, idx as i64);
    }

    /// Stores into local `idx`.
    pub fn istore(&mut self, idx: usize) {
        let op = match idx {
            0 => self.o.istore_0,
            1 => self.o.istore_1,
            2 => self.o.istore_2,
            3 => self.o.istore_3,
            _ => self.o.istore,
        };
        self.emit(op, idx as i64);
    }

    /// Adds `delta` to local `idx` in place.
    pub fn iinc(&mut self, idx: usize, delta: i32) {
        let op = self.o.iinc;
        self.emit(op, ((idx as i64) << 32) | i64::from(delta as u32));
    }

    /// Calls a static method `"Class.name"`.
    pub fn invokestatic(&mut self, qualified: &str) {
        let op = self.o.invokestatic;
        let i = self.emit(op, 0);
        self.method_fixups.push((i, qualified.to_owned()));
    }

    /// Calls a virtual method by name; the receiver and arguments are on
    /// the stack (receiver deepest).
    pub fn invokevirtual(&mut self, name: &str) {
        let op = self.o.invokevirtual;
        let id = self.intern(name) as i64;
        self.emit(op, id);
    }

    /// Loads an instance field by name.
    pub fn getfield(&mut self, name: &str) {
        let op = self.o.getfield;
        let id = self.intern(name) as i64;
        self.emit(op, id);
    }

    /// Stores an instance field by name (value on top, ref below).
    pub fn putfield(&mut self, name: &str) {
        let op = self.o.putfield;
        let id = self.intern(name) as i64;
        self.emit(op, id);
    }

    fn static_slot(&mut self, qualified: &str) -> i64 {
        let next = self.statics.len();
        *self.statics.entry(qualified.to_owned()).or_insert(next) as i64
    }

    /// Loads a static variable `"Class.name"`.
    pub fn getstatic(&mut self, qualified: &str) {
        let op = self.o.getstatic;
        let slot = self.static_slot(qualified);
        self.emit(op, slot);
    }

    /// Stores a static variable `"Class.name"`.
    pub fn putstatic(&mut self, qualified: &str) {
        let op = self.o.putstatic;
        let slot = self.static_slot(qualified);
        self.emit(op, slot);
    }

    /// Allocates an instance of `class`.
    pub fn new_object(&mut self, class: &str) {
        let op = self.o.new_;
        let id = i64::from(self.class_id(class));
        self.emit(op, id);
    }

    /// Returns from a `void` method.
    pub fn ret(&mut self) {
        let op = self.o.return_;
        self.emit(op, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial() -> JavaImage {
        let mut a = Asm::new();
        a.class("Main", None, &[]);
        a.begin_static("Main", "main", 0, 0);
        a.ldc(7);
        a.print_int();
        a.ret();
        a.end_method();
        a.link()
    }

    #[test]
    fn link_produces_boot_and_main() {
        let image = trivial();
        assert_eq!(image.entry, 0);
        let main = image.find_method("Main.main").expect("main exists");
        assert_eq!(image.program.target(0), Some(image.methods[main as usize].entry as usize));
    }

    #[test]
    fn labels_resolve() {
        let mut a = Asm::new();
        a.class("Main", None, &[]);
        a.begin_static("Main", "main", 0, 1);
        a.ldc(3);
        a.istore(0);
        a.label("loop");
        a.iinc(0, -1);
        a.iload(0);
        a.ifgt("loop");
        a.ret();
        a.end_method();
        let image = a.link();
        // The ifgt targets the iinc.
        let ifgt_idx = (0..image.program.len())
            .find(|&i| image.program.op(i) == ops().ifgt)
            .expect("ifgt present");
        assert!(image.program.target(ifgt_idx).is_some());
    }

    #[test]
    fn field_layout_includes_superclass() {
        let mut a = Asm::new();
        a.class("A", None, &["x"]);
        a.class("B", Some("A"), &["y"]);
        a.class("Main", None, &[]);
        a.begin_static("Main", "main", 0, 0);
        a.ret();
        a.end_method();
        let image = a.link();
        assert_eq!(image.field_layout(1), vec!["x".to_owned(), "y".to_owned()]);
        assert_eq!(image.instance_size(1), 2);
    }

    #[test]
    fn virtual_resolution_walks_supers() {
        let mut a = Asm::new();
        a.class("A", None, &[]);
        a.class("B", Some("A"), &[]);
        a.class("Main", None, &[]);
        a.begin_virtual("A", "f", 0, 1);
        a.ldc(1);
        a.ireturn();
        a.end_method();
        a.begin_static("Main", "main", 0, 0);
        a.ret();
        a.end_method();
        let mut a2 = a;
        // Intern the name so resolve_virtual can find it.
        a2.begin_static("Main", "probe", 0, 0);
        a2.new_object("B");
        a2.invokevirtual("f");
        a2.pop();
        a2.ret();
        a2.end_method();
        let image = a2.link();
        let name_id = image.names.iter().position(|n| n == "f").expect("interned");
        let m = image.resolve_virtual(1, name_id).expect("resolves via super");
        assert_eq!(image.methods[m as usize].name, "f");
    }

    #[test]
    #[should_panic(expected = "must define static Main.main")]
    fn missing_main_panics() {
        let mut a = Asm::new();
        a.class("Main", None, &[]);
        a.link();
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Asm::new();
        a.class("Main", None, &[]);
        a.begin_static("Main", "main", 0, 0);
        a.goto("nowhere");
        a.ret();
        a.end_method();
        a.link();
    }

    #[test]
    fn statics_get_distinct_slots() {
        let mut a = Asm::new();
        a.class("Main", None, &[]);
        a.begin_static("Main", "main", 0, 0);
        a.ldc(1);
        a.putstatic("Main.x");
        a.ldc(2);
        a.putstatic("Main.y");
        a.getstatic("Main.x");
        a.pop();
        a.ret();
        a.end_method();
        let image = a.link();
        assert_eq!(image.n_statics, 2);
    }
}

/// Disassembles a linked [`JavaImage`] to a readable listing: method
/// headers, one line per instance with mnemonic and resolved operand
/// (constant, local, name, class or branch target), and handler ranges.
///
/// # Examples
///
/// ```
/// use ivm_java::Asm;
///
/// let mut a = Asm::new();
/// a.class("Main", None, &[]);
/// a.begin_static("Main", "main", 0, 0);
/// a.ldc(7);
/// a.print_int();
/// a.ret();
/// a.end_method();
/// let listing = ivm_java::disassemble(&a.link());
/// assert!(listing.contains("Main.main"));
/// assert!(listing.contains("ldc 7"));
/// ```
pub fn disassemble(image: &JavaImage) -> String {
    use std::fmt::Write as _;
    let o = ops();
    let mut out = String::new();
    for i in 0..image.program.len() {
        if let Some(m) = image.methods.iter().find(|m| m.entry as usize == i) {
            let class = &image.classes[m.class as usize].name;
            let _ = writeln!(
                out,
                "{}{}.{} (args {}, locals {}):",
                if m.is_static { "static " } else { "" },
                class,
                m.name,
                m.nargs,
                m.nlocals
            );
        }
        let op = image.program.op(i);
        let name = o.spec.name(op);
        let operand = image.operands[i];
        let _ = write!(out, "{i:5}  {name}");
        if op == o.ldc || op == o.iload || op == o.istore {
            let _ = write!(out, " {operand}");
        } else if op == o.iinc {
            let _ = write!(out, " {} {}", operand >> 32, operand as u32 as i32);
        } else if op == o.getfield || op == o.putfield || op == o.invokevirtual {
            let _ = write!(out, " {}", image.names[operand as usize]);
        } else if op == o.new_ {
            let _ = write!(out, " {}", image.classes[operand as usize].name);
        } else if op == o.getstatic || op == o.putstatic {
            let _ = write!(out, " slot{operand}");
        } else if op == o.tableswitch {
            let t = &image.switch_tables[operand as usize];
            let _ = write!(out, " {:?} default {}", t.targets, t.default);
        }
        if let Some(t) = image.program.target(i) {
            let _ = write!(out, " -> {t}");
        }
        let _ = writeln!(out);
    }
    for h in &image.handlers {
        let _ = writeln!(out, "handler: [{}, {}) -> {}", h.from, h.to, h.handler);
    }
    out
}

#[cfg(test)]
mod disassemble_tests {
    use super::*;

    #[test]
    fn listing_shows_methods_operands_and_handlers() {
        let mut a = Asm::new();
        a.class("Exn", None, &[]);
        a.class("Main", None, &[]);
        a.begin_static("Main", "main", 0, 2);
        a.label("try");
        a.ldc(3);
        a.istore(1);
        a.iinc(1, -2);
        a.new_object("Exn");
        a.athrow();
        a.label("end");
        a.ret();
        a.label("catch");
        a.pop();
        a.ret();
        a.protect("try", "end", "catch");
        a.end_method();
        let image = a.link();
        let text = disassemble(&image);
        assert!(text.contains("static Main.main"));
        assert!(text.contains("ldc 3"));
        assert!(text.contains("iinc 1 -2"));
        assert!(text.contains("new Exn"));
        assert!(text.contains("handler: ["));
    }
}
