//! Cross-crate integration tests: the whole stack (predictor + cache +
//! translator + VM) glued together the way the paper's experiments are.

use ivm::bpred::{Btb, BtbConfig, IdealBtb, TwoLevelConfig, TwoLevelPredictor};
use ivm::cache::{CpuSpec, CycleCosts, PerfectIcache};
use ivm::core::{Engine, Technique};
use ivm::forth;
use ivm::java::Asm;

/// A small Forth workload with the Table I pathology.
fn forth_image() -> forth::Image {
    forth::compile(
        "
        : a dup 1+ swap + ;
        : b 2* 16383 and ;
        : main 1 300 0 do a b a a b loop . ;
        ",
    )
    .expect("compiles")
}

#[test]
fn forth_speedup_hierarchy_on_celeron() {
    // Paper Figures 7: plain <= dynamic super family <= across bb family.
    let image = forth_image();
    let profile = ivm::core::profile(&image).expect("profiles");
    let cpu = CpuSpec::celeron800();
    let cycles = |tech| {
        let image = forth_image();
        ivm::core::measure(&image, tech, &cpu, Some(&profile)).expect("runs").0.cycles
    };
    let plain = cycles(Technique::Threaded);
    let drepl = cycles(Technique::DynamicRepl);
    let across = cycles(Technique::AcrossBb);
    assert!(drepl < plain, "replication must beat plain on this loop");
    assert!(across < plain);
}

#[test]
fn two_level_predictor_shrinks_the_gap() {
    // Paper §8: with a two-level predictor (Pentium M) the techniques
    // matter much less, because plain threaded code already predicts well.
    // Use a call-free loop whose mispredictions are pure dispatch
    // pathology (repeated opcodes with changing successors) — returns
    // would not be fixed by either predictor or technique.
    let straightline = || {
        forth::compile(": main 1 500 0 do dup 1+ swap dup xor swap dup + 2* 1+ 16383 and loop . ;")
            .expect("compiles")
    };
    let image = straightline();
    let profile = ivm::core::profile(&image).expect("profiles");
    let costs = CycleCosts::celeron();

    let run = |tech, two_level: bool| {
        let image = straightline();
        let pred: Box<dyn ivm::bpred::IndirectPredictor> = if two_level {
            Box::new(TwoLevelPredictor::new(TwoLevelConfig::pentium_m()))
        } else {
            Box::new(Btb::new(BtbConfig::celeron()))
        };
        let engine = Engine::new(pred, Box::new(PerfectIcache::default()), costs);
        ivm::core::measure_with(&image, tech, engine, Some(&profile)).expect("runs").0
    };

    let btb_gain = run(Technique::Threaded, false).cycles / run(Technique::AcrossBb, false).cycles;
    let two_level_gain =
        run(Technique::Threaded, true).cycles / run(Technique::AcrossBb, true).cycles;
    assert!(
        two_level_gain < btb_gain,
        "software techniques should matter less on a two-level predictor: \
         {two_level_gain:.2} vs {btb_gain:.2}"
    );
}

#[test]
fn java_quickening_interacts_with_every_technique() {
    // An object-heavy loop where quickable sites sit in the middle of
    // blocks: exercises gap patching (dynamic) and re-parsing (static).
    let build_image = || {
        let mut a = Asm::new();
        a.class("Pt", None, &["x", "y"]);
        a.class("Main", None, &[]);
        a.begin_static("Main", "main", 0, 3);
        a.new_object("Pt");
        a.istore(0);
        a.ldc(0);
        a.istore(1);
        a.label("head");
        a.iload(0);
        a.iload(1);
        a.putfield("x");
        a.iload(0);
        a.iload(0);
        a.getfield("x");
        a.ldc(1);
        a.iadd();
        a.putfield("y");
        a.iload(0);
        a.getfield("y");
        a.pop();
        a.iinc(1, 1);
        a.iload(1);
        a.ldc(64);
        a.if_icmplt("head");
        a.iload(0);
        a.getfield("y");
        a.print_int();
        a.ret();
        a.end_method();
        a.link()
    };

    let image = build_image();
    let profile = ivm::core::profile(&image).expect("profiles");
    let cpu = CpuSpec::pentium4_northwood();
    let mut texts = Vec::new();
    for tech in Technique::jvm_suite() {
        let image = build_image();
        let (r, out) = ivm::core::measure(&image, tech, &cpu, Some(&profile))
            .unwrap_or_else(|e| panic!("{tech}: {e}"));
        assert!(out.quickenings >= 4, "{tech}: quickables must quicken");
        assert!(r.counters.instructions > 0);
        texts.push(out.text);
    }
    assert!(texts.windows(2).all(|w| w[0] == w[1]), "{texts:?}");
    assert_eq!(texts[0], "64\n");
}

#[test]
fn predictor_choice_only_affects_prediction_counters() {
    // Swapping the predictor must not change retired instructions,
    // dispatches, or code bytes — only (mis)predictions.
    let image = forth_image();
    let profile = ivm::core::profile(&image).expect("profiles");
    let costs = CycleCosts::celeron();

    let with_pred = |pred: Box<dyn ivm::bpred::IndirectPredictor>| {
        let image = forth_image();
        let engine = Engine::new(pred, Box::new(PerfectIcache::default()), costs);
        ivm::core::measure_with(&image, Technique::AcrossBb, engine, Some(&profile))
            .expect("runs")
            .0
    };
    let a = with_pred(Box::new(IdealBtb::new()));
    let b = with_pred(Box::new(Btb::new(BtbConfig::new(16, 1).tagless())));
    assert_eq!(a.counters.instructions, b.counters.instructions);
    assert_eq!(a.counters.dispatches, b.counters.dispatches);
    assert_eq!(a.counters.code_bytes, b.counters.code_bytes);
    assert!(a.counters.indirect_mispredicted <= b.counters.indirect_mispredicted);
}
