//! Differential test for the `GuestVm` refactor: the generic
//! `ivm::core::{profile, measure}` pipeline must reproduce, counter for
//! counter, the numbers the per-frontend pipelines produced before the
//! refactor.
//!
//! `tests/fixtures/perf_goldens.txt` was captured from the pre-refactor
//! code (one line per benchmark × CPU × technique, tab-separated
//! `PerfCounters` fields plus cycles). Nothing here may drift: the
//! refactor moved code, it did not change what is measured.

use std::fmt::Write as _;

use ivm::cache::CpuSpec;
use ivm::core::{RunResult, Technique};

const GOLDENS: &str = include_str!("fixtures/perf_goldens.txt");

fn golden_line(tag: &str, cpu: &CpuSpec, r: &RunResult) -> String {
    let c = &r.counters;
    let mut line = String::new();
    write!(
        line,
        "{tag}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        cpu.name,
        c.instructions,
        c.indirect_branches,
        c.indirect_mispredicted,
        c.icache_misses,
        c.icache_accesses,
        c.code_bytes,
        c.dispatches,
        r.cycles,
    )
    .expect("writing to String cannot fail");
    line
}

/// The fixture lines whose tag starts with `prefix/`, in fixture order.
fn golden_lines(prefix: &str) -> Vec<&'static str> {
    GOLDENS.lines().filter(|l| l.starts_with(prefix)).collect()
}

fn assert_matches(expected: &[&str], actual: &[String]) {
    assert_eq!(expected.len(), actual.len(), "golden line count drifted");
    for (e, a) in expected.iter().zip(actual) {
        assert_eq!(*e, a.as_str(), "perf counters drifted from the pre-refactor pipeline");
    }
}

#[test]
fn forth_counters_match_pre_refactor_pipeline() {
    let training =
        ivm::core::profile(&ivm::forth::programs::BRAINLESS.image()).expect("training profile");
    let mut actual = Vec::new();
    for name in ["micro", "gray", "bench-gc"] {
        let image = ivm::forth::programs::find(name).expect("bundled benchmark").image();
        for cpu in [CpuSpec::celeron800(), CpuSpec::pentium4_northwood()] {
            for t in Technique::gforth_suite() {
                let (r, _) = ivm::core::measure(&image, t, &cpu, Some(&training))
                    .unwrap_or_else(|e| panic!("{name}/{t}: {e}"));
                actual.push(golden_line(&format!("forth/{name}/{t}"), &cpu, &r));
            }
        }
    }
    assert_matches(&golden_lines("forth/"), &actual);
}

#[test]
fn java_counters_match_pre_refactor_pipeline() {
    let cpu = CpuSpec::pentium4_northwood();
    let mut actual = Vec::new();
    for name in ["db", "mpeg"] {
        let b = ivm::java::programs::find(name).expect("bundled benchmark");
        let image = (b.build)();
        let training = ivm::core::profile(&image).expect("training profile");
        for t in Technique::jvm_suite() {
            let (r, _) = ivm::core::measure(&image, t, &cpu, Some(&training))
                .unwrap_or_else(|e| panic!("{name}/{t}: {e}"));
            actual.push(golden_line(&format!("java/{name}/{t}"), &cpu, &r));
        }
    }
    assert_matches(&golden_lines("java/"), &actual);
}
