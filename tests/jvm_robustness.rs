//! Mini-JVM robustness: random straight-line bytecode must run to
//! completion or produce a structured error — never panic or hang.

use proptest::prelude::*;

use ivm::core::NullEvents;
use ivm::java::{self, Asm};

#[derive(Debug, Clone, Copy)]
enum Emit {
    Ldc(i16),
    Iload(u8),
    Istore(u8),
    Iinc(u8, i8),
    Pop,
    Dup,
    Swap,
    Iadd,
    Isub,
    Imul,
    Idiv,
    Newarray,
    Iaload,
    Iastore,
    Arraylength,
    GetStatic,
    PutStatic,
}

fn emit_strategy() -> impl Strategy<Value = Emit> {
    prop_oneof![
        any::<i16>().prop_map(Emit::Ldc),
        (0u8..6).prop_map(Emit::Iload),
        (0u8..6).prop_map(Emit::Istore),
        ((0u8..6), any::<i8>()).prop_map(|(i, d)| Emit::Iinc(i, d)),
        Just(Emit::Pop),
        Just(Emit::Dup),
        Just(Emit::Swap),
        Just(Emit::Iadd),
        Just(Emit::Isub),
        Just(Emit::Imul),
        Just(Emit::Idiv),
        Just(Emit::Newarray),
        Just(Emit::Iaload),
        Just(Emit::Iastore),
        Just(Emit::Arraylength),
        Just(Emit::GetStatic),
        Just(Emit::PutStatic),
    ]
}

fn build(emits: &[Emit]) -> java::JavaImage {
    let mut a = Asm::new();
    a.class("Main", None, &[]);
    a.begin_static("Main", "main", 0, 6);
    for e in emits {
        match *e {
            Emit::Ldc(v) => a.ldc(i64::from(v)),
            Emit::Iload(i) => a.iload(usize::from(i)),
            Emit::Istore(i) => a.istore(usize::from(i)),
            Emit::Iinc(i, d) => a.iinc(usize::from(i), i32::from(d)),
            Emit::Pop => a.pop(),
            Emit::Dup => a.dup(),
            Emit::Swap => a.swap(),
            Emit::Iadd => a.iadd(),
            Emit::Isub => a.isub(),
            Emit::Imul => a.imul(),
            Emit::Idiv => a.idiv(),
            Emit::Newarray => a.newarray(),
            Emit::Iaload => a.iaload(),
            Emit::Iastore => a.iastore(),
            Emit::Arraylength => a.arraylength(),
            Emit::GetStatic => a.getstatic("Main.g"),
            Emit::PutStatic => a.putstatic("Main.g"),
        }
    }
    a.ret();
    a.end_method();
    a.link()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random straight-line bytecode never panics the VM.
    #[test]
    fn random_bytecode_runs_or_errors(emits in proptest::collection::vec(emit_strategy(), 0..40)) {
        let image = build(&emits);
        let _ = java::run(&image, &mut NullEvents, 100_000);
    }

    /// The disassembler handles anything the assembler produces.
    #[test]
    fn disassembler_total(emits in proptest::collection::vec(emit_strategy(), 0..40)) {
        let image = build(&emits);
        let listing = java::disassemble(&image);
        prop_assert!(listing.lines().count() >= image.program.len());
    }
}
