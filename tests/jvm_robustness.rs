//! Mini-JVM robustness: random straight-line bytecode must run to
//! completion or produce a structured error — never panic or hang.

use ivm_harness::prop::{self, Source};
use ivm_harness::prop_assert;

use ivm::core::NullEvents;
use ivm::java::{self, Asm};

#[derive(Debug, Clone, Copy)]
enum Emit {
    Ldc(i16),
    Iload(u8),
    Istore(u8),
    Iinc(u8, i8),
    Pop,
    Dup,
    Swap,
    Iadd,
    Isub,
    Imul,
    Idiv,
    Newarray,
    Iaload,
    Iastore,
    Arraylength,
    GetStatic,
    PutStatic,
}

fn emit(src: &mut Source) -> Emit {
    match src.weighted(&[1; 17]) {
        0 => Emit::Ldc(src.full::<i16>()),
        1 => Emit::Iload(src.int_in(0u8..6)),
        2 => Emit::Istore(src.int_in(0u8..6)),
        3 => Emit::Iinc(src.int_in(0u8..6), src.full::<i8>()),
        4 => Emit::Pop,
        5 => Emit::Dup,
        6 => Emit::Swap,
        7 => Emit::Iadd,
        8 => Emit::Isub,
        9 => Emit::Imul,
        10 => Emit::Idiv,
        11 => Emit::Newarray,
        12 => Emit::Iaload,
        13 => Emit::Iastore,
        14 => Emit::Arraylength,
        15 => Emit::GetStatic,
        _ => Emit::PutStatic,
    }
}

fn emits(src: &mut Source) -> Vec<Emit> {
    src.vec_of(0..40, emit)
}

fn build(emits: &[Emit]) -> java::JavaImage {
    let mut a = Asm::new();
    a.class("Main", None, &[]);
    a.begin_static("Main", "main", 0, 6);
    for e in emits {
        match *e {
            Emit::Ldc(v) => a.ldc(i64::from(v)),
            Emit::Iload(i) => a.iload(usize::from(i)),
            Emit::Istore(i) => a.istore(usize::from(i)),
            Emit::Iinc(i, d) => a.iinc(usize::from(i), i32::from(d)),
            Emit::Pop => a.pop(),
            Emit::Dup => a.dup(),
            Emit::Swap => a.swap(),
            Emit::Iadd => a.iadd(),
            Emit::Isub => a.isub(),
            Emit::Imul => a.imul(),
            Emit::Idiv => a.idiv(),
            Emit::Newarray => a.newarray(),
            Emit::Iaload => a.iaload(),
            Emit::Iastore => a.iastore(),
            Emit::Arraylength => a.arraylength(),
            Emit::GetStatic => a.getstatic("Main.g"),
            Emit::PutStatic => a.putstatic("Main.g"),
        }
    }
    a.ret();
    a.end_method();
    a.link()
}

/// Random straight-line bytecode never panics the VM.
#[test]
fn random_bytecode_runs_or_errors() {
    prop::check("random_bytecode_runs_or_errors", prop::Config::from_env().cases(96), |src| {
        let image = build(&emits(src));
        let _ = java::run(&image, &mut NullEvents, 100_000);
        Ok(())
    });
}

/// The disassembler handles anything the assembler produces.
#[test]
fn disassembler_total() {
    prop::check("disassembler_total", prop::Config::from_env().cases(96), |src| {
        let image = build(&emits(src));
        let listing = java::disassemble(&image);
        prop_assert!(listing.lines().count() >= image.program.len());
        Ok(())
    });
}
