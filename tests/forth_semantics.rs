//! Property tests over the Forth system: randomly generated source
//! programs must behave identically under every dispatch technique, and
//! interpreter errors must be stable.

use ivm_harness::prop::{self, Source};
use ivm_harness::prop_assert;

use ivm::cache::CpuSpec;
use ivm::core::{NullEvents, Technique};
use ivm::forth;

const BINOPS: [&str; 8] = ["+", "-", "*", "min", "max", "and", "or", "xor"];
const UNOPS: [&str; 7] = ["negate", "abs", "1+", "1-", "2*", "invert", "dup +"];

/// A random straight-line arithmetic expression in postfix form, always
/// leaving exactly one value on the stack. `depth` bounds the recursion.
fn expr(src: &mut Source, depth: u32) -> String {
    fn leaf(src: &mut Source) -> String {
        src.int_in(-99i64..100).to_string()
    }
    if depth == 0 {
        return leaf(src);
    }
    match src.weighted(&[2, 1, 1]) {
        0 => leaf(src),
        1 => {
            let a = expr(src, depth - 1);
            let b = expr(src, depth - 1);
            let op = src.pick(&BINOPS);
            format!("{a} {b} {op}")
        }
        _ => {
            let a = expr(src, depth - 1);
            let op = src.pick(&UNOPS);
            format!("{a} {op}")
        }
    }
}

/// Random loop bounds and strides for counted loops.
fn counted_loop(src: &mut Source) -> String {
    let n = src.int_in(1i64..20);
    let k = src.int_in(1i64..8);
    format!("0 {n} 0 do i {k} * + loop .")
}

fn run_all_techniques(source: &str) -> Vec<String> {
    let image = forth::compile(source).expect("generated source compiles");
    let profile = ivm::core::profile(&image).expect("profiles");
    let cpu = CpuSpec::celeron800();
    let mut outputs = Vec::new();
    for tech in Technique::gforth_suite() {
        let (_, out) = ivm::core::measure(&image, tech, &cpu, Some(&profile))
            .unwrap_or_else(|e| panic!("{tech}: {e}"));
        outputs.push(out.text);
    }
    outputs
}

/// Code layout must never change program output.
#[test]
fn expressions_agree_across_techniques() {
    prop::check("expressions_agree_across_techniques", prop::Config::from_env().cases(32), |src| {
        let e = expr(src, 4);
        let source = format!(": main {e} . ;");
        let outputs = run_all_techniques(&source);
        prop_assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
        Ok(())
    });
}

/// Loops (block-heavy control flow) agree too, and match the directly
/// computed sum.
#[test]
fn loops_agree_and_are_correct() {
    prop::check("loops_agree_and_are_correct", prop::Config::from_env().cases(32), |src| {
        let l = counted_loop(src);
        let source = format!(": main {l} ;");
        let image = forth::compile(&source).expect("compiles");
        let direct = forth::run(&image, &mut NullEvents, 1_000_000).expect("runs");
        let outputs = run_all_techniques(&source);
        prop_assert!(outputs.iter().all(|t| *t == direct.text), "{outputs:?} vs {}", direct.text);
        Ok(())
    });
}

/// Nested definitions with calls agree.
#[test]
fn calls_agree_across_techniques() {
    prop::check("calls_agree_across_techniques", prop::Config::from_env().cases(32), |src| {
        let a = expr(src, 4);
        let n = src.int_in(1i64..12);
        let source = format!(": helper {a} ;\n: main 0 {n} 0 do helper 16383 and + loop . ;");
        let outputs = run_all_techniques(&source);
        prop_assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
        Ok(())
    });
}

/// The interpreter rejects stack underflow identically regardless of
/// how deep the expression goes before underflowing.
#[test]
fn underflow_is_detected() {
    prop::check("underflow_is_detected", prop::Config::from_env().cases(32), |src| {
        let k = src.int_in(1usize..6);
        let drops = "drop ".repeat(k);
        let source = format!(": main 1 2 {drops} drop drop . ;");
        let image = forth::compile(&source).expect("compiles");
        let r = forth::run(&image, &mut NullEvents, 10_000);
        prop_assert!(matches!(r, Err(forth::VmError::StackUnderflow(_))), "{r:?}");
        Ok(())
    });
}
