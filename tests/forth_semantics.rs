//! Property tests over the Forth system: randomly generated source
//! programs must behave identically under every dispatch technique, and
//! interpreter errors must be stable.

use proptest::prelude::*;

use ivm::cache::CpuSpec;
use ivm::core::{NullEvents, Technique};
use ivm::forth;

/// A random straight-line arithmetic expression in postfix form, always
/// leaving exactly one value on the stack.
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = (-99i64..100).prop_map(|n| n.to_string());
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just("+"), Just("-"), Just("*"), Just("min"), Just("max"),
                Just("and"), Just("or"), Just("xor"),
            ])
                .prop_map(|(a, b, op)| format!("{a} {b} {op}")),
            (inner.clone(), prop_oneof![
                Just("negate"), Just("abs"), Just("1+"), Just("1-"),
                Just("2*"), Just("invert"), Just("dup +"),
            ])
                .prop_map(|(a, op)| format!("{a} {op}")),
        ]
    })
}

/// Random loop bounds and strides for counted loops.
fn loop_strategy() -> impl Strategy<Value = String> {
    (1i64..20, 1i64..8).prop_map(|(n, k)| {
        format!("0 {n} 0 do i {k} * + loop .")
    })
}

fn run_all_techniques(source: &str) -> Vec<String> {
    let image = forth::compile(source).expect("generated source compiles");
    let profile = forth::profile(&image).expect("profiles");
    let cpu = CpuSpec::celeron800();
    let mut outputs = Vec::new();
    for tech in Technique::gforth_suite() {
        let (_, out) = forth::measure(&image, tech, &cpu, Some(&profile))
            .unwrap_or_else(|e| panic!("{tech}: {e}"));
        outputs.push(out.text);
    }
    outputs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Code layout must never change program output.
    #[test]
    fn expressions_agree_across_techniques(e in expr_strategy()) {
        let source = format!(": main {e} . ;");
        let outputs = run_all_techniques(&source);
        prop_assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
    }

    /// Loops (block-heavy control flow) agree too, and match the directly
    /// computed sum.
    #[test]
    fn loops_agree_and_are_correct(l in loop_strategy()) {
        let source = format!(": main {l} ;");
        let image = forth::compile(&source).expect("compiles");
        let direct = forth::run(&image, &mut NullEvents, 1_000_000).expect("runs");
        let outputs = run_all_techniques(&source);
        prop_assert!(outputs.iter().all(|t| *t == direct.text), "{outputs:?} vs {}", direct.text);
    }

    /// Nested definitions with calls agree.
    #[test]
    fn calls_agree_across_techniques(a in expr_strategy(), n in 1i64..12) {
        let source = format!(
            ": helper {a} ;\n: main 0 {n} 0 do helper 16383 and + loop . ;"
        );
        let outputs = run_all_techniques(&source);
        prop_assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
    }

    /// The interpreter rejects stack underflow identically regardless of
    /// how deep the expression goes before underflowing.
    #[test]
    fn underflow_is_detected(k in 1usize..6) {
        let drops = "drop ".repeat(k);
        let source = format!(": main 1 2 {drops} drop drop . ;");
        let image = forth::compile(&source).expect("compiles");
        let r = forth::run(&image, &mut NullEvents, 10_000);
        prop_assert!(matches!(r, Err(forth::VmError::StackUnderflow(_))), "{r:?}");
    }
}
