//! Front-end robustness: arbitrary token soup must never panic the Forth
//! compiler or the assembler-facing VMs — either it compiles and runs
//! within fuel, or it reports a structured error.

use ivm_harness::prop::{self, Source};
use ivm_harness::{prop_assert, prop_assert_eq};

use ivm::core::NullEvents;
use ivm::forth;

/// Words the compiler knows, including structure words.
const KNOWN_WORDS: [&str; 38] = [
    ":", ";", "if", "else", "then", "begin", "until", "while", "repeat", "do", "loop", "+loop",
    "?leave", "case", "of", "endof", "endcase", "recurse", "exit", "dup", "drop", "swap", "+", "-",
    "*", "/", "@", "!", ".", "i", "j", "variable", "constant", "create", "allot", "cells", "main",
    "x",
];

fn token(src: &mut Source) -> String {
    match src.weighted(&[3, 1, 1]) {
        0 => src.pick(&KNOWN_WORDS).to_owned(),
        // Numbers.
        1 => src.int_in(-1000i64..1000).to_string(),
        // Garbage identifiers.
        _ => src.lowercase(1..7),
    }
}

fn tokens(src: &mut Source, max: usize) -> Vec<String> {
    src.vec_of(0..max, token)
}

/// The compiler returns Ok or Err, never panics, on random token soup.
#[test]
fn compiler_never_panics() {
    prop::check("compiler_never_panics", prop::Config::from_env().cases(64), |src| {
        let source = tokens(src, 60).join(" ");
        let _ = forth::compile(&source);
        Ok(())
    });
}

/// Whatever compiles must run to a clean stop or a structured VM error
/// within fuel — never a panic or an infinite loop.
#[test]
fn compiled_soup_runs_or_errors() {
    prop::check("compiled_soup_runs_or_errors", prop::Config::from_env().cases(64), |src| {
        let body = tokens(src, 60)
            .iter()
            .filter(|t| {
                // Keep the body free of definition words so it stays one word.
                !matches!(t.as_str(), ":" | ";" | "variable" | "constant" | "create" | "main")
            })
            .cloned()
            .collect::<Vec<_>>()
            .join(" ");
        let source = format!(": main {body} ;");
        if let Ok(image) = forth::compile(&source) {
            let _ = forth::run(&image, &mut NullEvents, 200_000);
        }
        Ok(())
    });
}

/// Compiling is deterministic: same source, same image shape.
#[test]
fn compilation_is_deterministic() {
    prop::check("compilation_is_deterministic", prop::Config::from_env().cases(64), |src| {
        let source = tokens(src, 40).join(" ");
        match (forth::compile(&source), forth::compile(&source)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.program.len(), b.program.len());
                prop_assert_eq!(&a.operands, &b.operands);
            }
            (Err(a), Err(b)) => prop_assert_eq!(&a.message, &b.message),
            (a, b) => prop_assert!(false, "nondeterministic outcome: {a:?} vs {b:?}"),
        }
        Ok(())
    });
}
