//! Front-end robustness: arbitrary token soup must never panic the Forth
//! compiler or the assembler-facing VMs — either it compiles and runs
//! within fuel, or it reports a structured error.

use proptest::prelude::*;

use ivm::core::NullEvents;
use ivm::forth;

fn token_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        // Words the compiler knows, including structure words.
        proptest::sample::select(vec![
            ":", ";", "if", "else", "then", "begin", "until", "while", "repeat", "do", "loop",
            "+loop", "?leave", "case", "of", "endof", "endcase", "recurse", "exit", "dup",
            "drop", "swap", "+", "-", "*", "/", "@", "!", ".", "i", "j", "variable",
            "constant", "create", "allot", "cells", "main", "x",
        ])
        .prop_map(str::to_owned),
        // Numbers.
        (-1000i64..1000).prop_map(|n| n.to_string()),
        // Garbage identifiers.
        "[a-z]{1,6}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiler returns Ok or Err, never panics, on random token soup.
    #[test]
    fn compiler_never_panics(tokens in proptest::collection::vec(token_strategy(), 0..60)) {
        let source = tokens.join(" ");
        let _ = forth::compile(&source);
    }

    /// Whatever compiles must run to a clean stop or a structured VM error
    /// within fuel — never a panic or an infinite loop.
    #[test]
    fn compiled_soup_runs_or_errors(tokens in proptest::collection::vec(token_strategy(), 0..60)) {
        let source = format!(": main {} ;", tokens.iter().filter(|t| {
            // Keep the body free of definition words so it stays one word.
            !matches!(t.as_str(), ":" | ";" | "variable" | "constant" | "create" | "main")
        }).cloned().collect::<Vec<_>>().join(" "));
        if let Ok(image) = forth::compile(&source) {
            let _ = forth::run(&image, &mut NullEvents, 200_000);
        }
    }

    /// Compiling is deterministic: same source, same image shape.
    #[test]
    fn compilation_is_deterministic(tokens in proptest::collection::vec(token_strategy(), 0..40)) {
        let source = tokens.join(" ");
        match (forth::compile(&source), forth::compile(&source)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.program.len(), b.program.len());
                prop_assert_eq!(a.operands, b.operands);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.message, b.message),
            (a, b) => prop_assert!(false, "nondeterministic outcome: {a:?} vs {b:?}"),
        }
    }
}
