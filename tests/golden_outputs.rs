//! Golden-output regression tests: every bundled benchmark must keep
//! producing its recorded checksum and step count. Any semantic change to a
//! VM, a compiler, or a benchmark program trips these immediately — and
//! because outputs are technique-independent (verified elsewhere), one
//! recording covers every dispatch variant.

use ivm::core::NullEvents;

#[test]
fn forth_suite_golden() {
    let expected = [
        ("gray", "47530 \n", 2_982_942u64),
        ("bench-gc", "4484 76 \n", 2_934_418),
        ("tscp", "146 7247 \n", 296_491),
        ("vmgen", "62213 \n", 1_895_101),
        ("cross", "38662 \n", 4_035_669),
        ("brainless", "65005 4092 \n", 2_062_379),
        ("brew", "87 1 \n", 2_231_617),
    ];
    for (name, text, steps) in expected {
        let b = ivm::forth::programs::find(name).expect("bundled benchmark");
        let image = b.image();
        let out = ivm::forth::run(&image, &mut NullEvents, 100_000_000)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.text, text, "{name} output drifted");
        assert_eq!(out.steps, steps, "{name} step count drifted");
        assert!(out.stack.is_empty(), "{name} left data on the stack");
    }
}

#[test]
fn java_suite_golden() {
    // (name, text, steps, allocations, quickenings)
    let expected = [
        ("jack", "278365488\n", 490_007u64, 1u64, 3u64),
        ("mpeg", "16752608\n", 446_783, 1, 3),
        ("compress", "2246496\n", 634_139, 5, 3),
        ("javac", "10522\n", 1_110_804, 122, 3),
        ("jess", "17325658\n", 395_047, 265, 15),
        ("db", "541\n", 788_228, 161, 14),
        ("mtrt", "8723838\n", 1_358_131, 65, 453),
    ];
    for (name, text, steps, allocations, quickenings) in expected {
        let b = ivm::java::programs::find(name).expect("bundled benchmark");
        let image = (b.build)();
        let out = ivm::java::run(&image, &mut NullEvents, 200_000_000)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.text, text, "{name} output drifted");
        assert_eq!(out.steps, steps, "{name} step count drifted");
        assert_eq!(out.allocations, allocations, "{name} allocation count drifted");
        assert_eq!(out.quickenings, quickenings, "{name} quickening count drifted");
    }
}
