//! Property tests: every dispatch technique must handle arbitrary program
//! shapes, and the paper's structural invariants must hold on all of them.
//!
//! Programs are generated as raw instruction streams (kinds + targets) and
//! driven by a deterministic random walk, so these tests exercise the
//! translators (block/region construction, sharing, quick gaps, side
//! entries) far beyond what the hand-written benchmarks reach.

use proptest::prelude::*;

use ivm_bpred::IdealBtb;
use ivm_cache::{CycleCosts, PerfectIcache};
use ivm_core::{
    translate, CoverAlgorithm, Engine, InstKind, Measurement, NativeSpec, OpId, Profile,
    ProfileCollector, ProgramCode, ReplicaSelection, RunResult, Runner, SuperSelection,
    Technique, VmEvents, VmSpec,
};

/// A tiny VM with every instruction kind, including a quickable one.
struct TestVm {
    spec: VmSpec,
    plain: Vec<OpId>,
    cond: OpId,
    jump: OpId,
    call: OpId,
    ret: OpId,
    quickable: OpId,
    quick: OpId,
}

fn test_vm() -> TestVm {
    let mut b = VmSpec::builder("proptest");
    let plain = vec![
        b.inst("p0", NativeSpec::new(2, 6, InstKind::Plain)),
        b.inst("p1", NativeSpec::new(3, 9, InstKind::Plain)),
        b.inst("p2", NativeSpec::new(1, 4, InstKind::Plain)),
        b.inst("p3", NativeSpec::new(5, 14, InstKind::Plain).non_relocatable()),
    ];
    let cond = b.inst("cond", NativeSpec::new(3, 12, InstKind::CondBranch));
    let jump = b.inst("jump", NativeSpec::new(2, 8, InstKind::Jump));
    let call = b.inst("call", NativeSpec::new(4, 12, InstKind::Call));
    let ret = b.inst("ret", NativeSpec::new(3, 10, InstKind::Return));
    let quick = b.inst("gq", NativeSpec::new(4, 12, InstKind::Plain));
    let quickable = b.quickable("g", NativeSpec::new(40, 80, InstKind::Plain), vec![quick]);
    TestVm { spec: b.build(), plain, cond, jump, call, ret, quickable, quick }
}

/// Instruction template drawn by proptest; resolved into a program later.
#[derive(Debug, Clone, Copy)]
enum Templ {
    Plain(u8),
    Quickable,
    Cond(u8),
    Jump(u8),
    Call(u8),
    Ret,
}

fn templ_strategy() -> impl Strategy<Value = Templ> {
    prop_oneof![
        5 => any::<u8>().prop_map(Templ::Plain),
        1 => Just(Templ::Quickable),
        2 => any::<u8>().prop_map(Templ::Cond),
        1 => any::<u8>().prop_map(Templ::Jump),
        1 => any::<u8>().prop_map(Templ::Call),
        1 => Just(Templ::Ret),
    ]
}

/// Like [`templ_strategy`] but only fully-relocatable, non-quickable
/// instructions: non-relocatable interiors execute dispatch stubs in
/// dynamic code (paper §5.2), so dispatch-count monotonicity only holds for
/// relocatable programs.
fn relocatable_templ_strategy() -> impl Strategy<Value = Templ> {
    prop_oneof![
        5 => (0u8..3).prop_map(Templ::Plain),
        2 => any::<u8>().prop_map(Templ::Cond),
        1 => any::<u8>().prop_map(Templ::Jump),
        1 => any::<u8>().prop_map(Templ::Call),
        1 => Just(Templ::Ret),
    ]
}

fn build_program(vm: &TestVm, templ: &[Templ]) -> ProgramCode {
    let n = templ.len() as u32;
    let mut p = ProgramCode::builder("random");
    for (i, t) in templ.iter().enumerate() {
        let pick_target = |sel: u8| u32::from(sel) % n;
        match t {
            Templ::Plain(k) => {
                p.push(vm.plain[usize::from(*k) % vm.plain.len()], None);
            }
            Templ::Quickable => {
                p.push(vm.quickable, None);
            }
            Templ::Cond(s) => {
                p.push(vm.cond, Some(pick_target(*s)));
            }
            Templ::Jump(s) => {
                p.push(vm.jump, Some(pick_target(*s)));
            }
            Templ::Call(s) => {
                let t = pick_target(*s);
                let inst = p.push(vm.call, Some(t));
                // call targets are entry points
                let _ = inst;
                p.mark_entry(t);
            }
            Templ::Ret => {
                p.push(vm.ret, None);
            }
        }
        let _ = i;
    }
    // Ensure execution cannot fall off the end.
    p.push(vm.ret, None);
    p.finish(&vm.spec)
}

/// Deterministic random walk over the program, reporting to `events`.
/// Returns the number of steps taken.
fn walk(vm: &TestVm, program: &ProgramCode, decisions: &[bool], events: &mut dyn VmEvents) -> usize {
    let n = program.len();
    let mut quickened = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut d = 0usize;
    let decide = |d: &mut usize| {
        let v = decisions[*d % decisions.len()];
        *d += 1;
        v
    };
    let mut ip = 0usize;
    events.begin(ip);
    for step in 0..600 {
        let op = program.op(ip);
        let kind = vm.spec.native(op).kind;
        // Quickening happens on the first execution of a quickable site.
        if kind == InstKind::Quickable && !quickened[ip] {
            quickened[ip] = true;
            events.quicken(ip, vm.quick);
        }
        let (next, taken) = match kind {
            InstKind::Plain | InstKind::Quickable => (ip + 1, false),
            InstKind::CondBranch => {
                if decide(&mut d) {
                    (program.target(ip).expect("cond target"), true)
                } else {
                    (ip + 1, false)
                }
            }
            InstKind::Jump => (program.target(ip).expect("jump target"), true),
            InstKind::Call => {
                if stack.len() < 16 {
                    stack.push(ip + 1);
                    (program.target(ip).expect("call target"), true)
                } else {
                    // Too deep: treat as a no-op fall-through is illegal for
                    // Call, so return instead (pop if possible).
                    match stack.pop() {
                        Some(r) => (r, true),
                        None => return step,
                    }
                }
            }
            InstKind::Return => match stack.pop() {
                Some(r) => (r, true),
                None => return step,
            },
        };
        if next >= n {
            return step;
        }
        events.transfer(ip, next, taken);
        ip = next;
    }
    600
}

fn all_techniques() -> Vec<Technique> {
    vec![
        Technique::Switch,
        Technique::Threaded,
        Technique::StaticRepl { budget: 30, selection: ReplicaSelection::RoundRobin },
        Technique::StaticRepl { budget: 13, selection: ReplicaSelection::Random { seed: 5 } },
        Technique::StaticSuper { budget: 20, algo: CoverAlgorithm::Greedy },
        Technique::StaticSuper { budget: 20, algo: CoverAlgorithm::Optimal },
        Technique::StaticBoth {
            replicas: 15,
            supers: 10,
            selection: ReplicaSelection::RoundRobin,
            algo: CoverAlgorithm::Greedy,
        },
        Technique::DynamicRepl,
        Technique::DynamicSuper,
        Technique::DynamicBoth,
        Technique::AcrossBb,
        Technique::WithStaticSuper { supers: 20, algo: CoverAlgorithm::Greedy },
        Technique::WithStaticSuperAcross { supers: 20, algo: CoverAlgorithm::Greedy },
        Technique::SubroutineThreading,
    ]
}

fn run_technique(
    vm: &TestVm,
    program: &ProgramCode,
    decisions: &[bool],
    profile: &Profile,
    tech: Technique,
) -> RunResult {
    let t = translate(&vm.spec, program, tech, Some(profile), SuperSelection::gforth());
    assert_eq!(t.validate(), program.len(), "{tech}: layout invariants");
    let engine = Engine::new(
        Box::new(IdealBtb::new()),
        Box::new(PerfectIcache::default()),
        CycleCosts { cpi: 1.0, mispredict_penalty: 10.0, icache_miss_penalty: 27.0 },
    );
    let mut m = Measurement::new(t, Runner::new(engine));
    walk(vm, program, decisions, &mut m);
    m.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every technique translates and executes every program shape.
    #[test]
    fn all_techniques_survive_random_programs(
        templ in proptest::collection::vec(templ_strategy(), 4..50),
        decisions in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let vm = test_vm();
        let program = build_program(&vm, &templ);
        let mut collector = ProfileCollector::new(&program);
        walk(&vm, &program, &decisions, &mut collector);
        let profile = collector.into_profile();
        for tech in all_techniques() {
            let r = run_technique(&vm, &program, &decisions, &profile, tech);
            prop_assert!(r.cycles >= 0.0, "{tech}: negative cycles");
        }
    }

    /// Paper §7.3: plain, static replication and dynamic replication retire
    /// exactly the same instructions and indirect branches.
    #[test]
    fn replication_preserves_instruction_counts(
        templ in proptest::collection::vec(templ_strategy(), 4..50),
        decisions in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let vm = test_vm();
        let program = build_program(&vm, &templ);
        let mut collector = ProfileCollector::new(&program);
        walk(&vm, &program, &decisions, &mut collector);
        let profile = collector.into_profile();

        let plain = run_technique(&vm, &program, &decisions, &profile, Technique::Threaded);
        let srepl = run_technique(&vm, &program, &decisions, &profile,
            Technique::StaticRepl { budget: 30, selection: ReplicaSelection::RoundRobin });
        let drepl = run_technique(&vm, &program, &decisions, &profile, Technique::DynamicRepl);

        prop_assert_eq!(plain.counters.instructions, srepl.counters.instructions);
        prop_assert_eq!(plain.counters.indirect_branches, srepl.counters.indirect_branches);
        prop_assert_eq!(plain.counters.instructions, drepl.counters.instructions);
        prop_assert_eq!(plain.counters.indirect_branches, drepl.counters.indirect_branches);
        prop_assert_eq!(plain.counters.dispatches, drepl.counters.dispatches);
    }

    /// Dynamic super and dynamic both differ only in sharing: identical
    /// instruction counts, and sharing never *increases* code size.
    #[test]
    fn sharing_only_affects_code_size(
        templ in proptest::collection::vec(templ_strategy(), 4..50),
        decisions in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let vm = test_vm();
        let program = build_program(&vm, &templ);
        let mut collector = ProfileCollector::new(&program);
        walk(&vm, &program, &decisions, &mut collector);
        let profile = collector.into_profile();

        let ds = run_technique(&vm, &program, &decisions, &profile, Technique::DynamicSuper);
        let db = run_technique(&vm, &program, &decisions, &profile, Technique::DynamicBoth);
        prop_assert_eq!(ds.counters.instructions, db.counters.instructions);
        prop_assert_eq!(ds.counters.indirect_branches, db.counters.indirect_branches);
        prop_assert!(ds.counters.code_bytes <= db.counters.code_bytes);
    }

    /// Superinstructions and fall-through merging only remove dispatches
    /// (for relocatable code — stubs for non-relocatable interiors may add
    /// them, paper §5.2).
    #[test]
    fn dispatch_counts_are_monotone(
        templ in proptest::collection::vec(relocatable_templ_strategy(), 4..50),
        decisions in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let vm = test_vm();
        let program = build_program(&vm, &templ);
        let mut collector = ProfileCollector::new(&program);
        walk(&vm, &program, &decisions, &mut collector);
        let profile = collector.into_profile();

        let plain = run_technique(&vm, &program, &decisions, &profile, Technique::Threaded);
        let ds = run_technique(&vm, &program, &decisions, &profile, Technique::DynamicSuper);
        let across = run_technique(&vm, &program, &decisions, &profile, Technique::AcrossBb);
        prop_assert!(ds.counters.dispatches <= plain.counters.dispatches);
        prop_assert!(across.counters.dispatches <= ds.counters.dispatches);
    }

    /// The optimal parser never produces more units (dispatches) than
    /// greedy under identical superinstruction tables.
    #[test]
    fn optimal_never_worse_than_greedy(
        templ in proptest::collection::vec(templ_strategy(), 4..50),
        decisions in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let vm = test_vm();
        let program = build_program(&vm, &templ);
        let mut collector = ProfileCollector::new(&program);
        walk(&vm, &program, &decisions, &mut collector);
        let profile = collector.into_profile();

        let g = run_technique(&vm, &program, &decisions, &profile,
            Technique::StaticSuper { budget: 20, algo: CoverAlgorithm::Greedy });
        let o = run_technique(&vm, &program, &decisions, &profile,
            Technique::StaticSuper { budget: 20, algo: CoverAlgorithm::Optimal });
        prop_assert!(o.counters.dispatches <= g.counters.dispatches);
    }
}
