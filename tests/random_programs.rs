//! Property tests: every dispatch technique must handle arbitrary program
//! shapes, and the paper's structural invariants must hold on all of them.
//!
//! Programs are generated as raw instruction streams (kinds + targets) and
//! driven by a deterministic random walk, so these tests exercise the
//! translators (block/region construction, sharing, quick gaps, side
//! entries) far beyond what the hand-written benchmarks reach.

use ivm_harness::prop::{self, Source};
use ivm_harness::prop_assert;

use ivm_bpred::IdealBtb;
use ivm_cache::{CycleCosts, PerfectIcache};
use ivm_core::{
    translate, CoverAlgorithm, Engine, InstKind, Measurement, NativeSpec, OpId, Profile,
    ProfileCollector, ProgramCode, ReplicaSelection, RunResult, Runner, SuperSelection, Technique,
    VmEvents, VmSpec,
};

/// A tiny VM with every instruction kind, including a quickable one.
struct TestVm {
    spec: VmSpec,
    plain: Vec<OpId>,
    cond: OpId,
    jump: OpId,
    call: OpId,
    ret: OpId,
    quickable: OpId,
    quick: OpId,
}

fn test_vm() -> TestVm {
    let mut b = VmSpec::builder("proptest");
    let plain = vec![
        b.inst("p0", NativeSpec::new(2, 6, InstKind::Plain)),
        b.inst("p1", NativeSpec::new(3, 9, InstKind::Plain)),
        b.inst("p2", NativeSpec::new(1, 4, InstKind::Plain)),
        b.inst("p3", NativeSpec::new(5, 14, InstKind::Plain).non_relocatable()),
    ];
    let cond = b.inst("cond", NativeSpec::new(3, 12, InstKind::CondBranch));
    let jump = b.inst("jump", NativeSpec::new(2, 8, InstKind::Jump));
    let call = b.inst("call", NativeSpec::new(4, 12, InstKind::Call));
    let ret = b.inst("ret", NativeSpec::new(3, 10, InstKind::Return));
    let quick = b.inst("gq", NativeSpec::new(4, 12, InstKind::Plain));
    let quickable = b.quickable("g", NativeSpec::new(40, 80, InstKind::Plain), vec![quick]);
    TestVm { spec: b.build(), plain, cond, jump, call, ret, quickable, quick }
}

/// Instruction template drawn by the generator; resolved into a program
/// later.
#[derive(Debug, Clone, Copy)]
enum Templ {
    Plain(u8),
    Quickable,
    Cond(u8),
    Jump(u8),
    Call(u8),
    Ret,
}

fn templ(src: &mut Source) -> Templ {
    match src.weighted(&[5, 1, 2, 1, 1, 1]) {
        0 => Templ::Plain(src.full::<u8>()),
        1 => Templ::Quickable,
        2 => Templ::Cond(src.full::<u8>()),
        3 => Templ::Jump(src.full::<u8>()),
        4 => Templ::Call(src.full::<u8>()),
        _ => Templ::Ret,
    }
}

/// Like [`templ`] but only fully-relocatable, non-quickable
/// instructions: non-relocatable interiors execute dispatch stubs in
/// dynamic code (paper §5.2), so dispatch-count monotonicity only holds for
/// relocatable programs.
fn relocatable_templ(src: &mut Source) -> Templ {
    match src.weighted(&[5, 2, 1, 1, 1]) {
        0 => Templ::Plain(src.int_in(0u8..3)),
        1 => Templ::Cond(src.full::<u8>()),
        2 => Templ::Jump(src.full::<u8>()),
        3 => Templ::Call(src.full::<u8>()),
        _ => Templ::Ret,
    }
}

/// The shared input shape of every property here: a template vector and
/// the 16-decision tape that steers the random walk.
fn inputs(src: &mut Source, element: impl FnMut(&mut Source) -> Templ) -> (Vec<Templ>, Vec<bool>) {
    let templ = src.vec_of(4..50, element);
    let decisions = src.vec_exact(16, Source::bool);
    (templ, decisions)
}

fn build_program(vm: &TestVm, templ: &[Templ]) -> ProgramCode {
    let n = templ.len() as u32;
    let mut p = ProgramCode::builder("random");
    for (i, t) in templ.iter().enumerate() {
        let pick_target = |sel: u8| u32::from(sel) % n;
        match t {
            Templ::Plain(k) => {
                p.push(vm.plain[usize::from(*k) % vm.plain.len()], None);
            }
            Templ::Quickable => {
                p.push(vm.quickable, None);
            }
            Templ::Cond(s) => {
                p.push(vm.cond, Some(pick_target(*s)));
            }
            Templ::Jump(s) => {
                p.push(vm.jump, Some(pick_target(*s)));
            }
            Templ::Call(s) => {
                let t = pick_target(*s);
                let inst = p.push(vm.call, Some(t));
                // call targets are entry points
                let _ = inst;
                p.mark_entry(t);
            }
            Templ::Ret => {
                p.push(vm.ret, None);
            }
        }
        let _ = i;
    }
    // Ensure execution cannot fall off the end.
    p.push(vm.ret, None);
    p.finish(&vm.spec)
}

/// Deterministic random walk over the program, reporting to `events`.
/// Returns the number of steps taken.
fn walk(
    vm: &TestVm,
    program: &ProgramCode,
    decisions: &[bool],
    events: &mut dyn VmEvents,
) -> usize {
    let n = program.len();
    let mut quickened = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut d = 0usize;
    let decide = |d: &mut usize| {
        let v = decisions[*d % decisions.len()];
        *d += 1;
        v
    };
    let mut ip = 0usize;
    events.begin(ip);
    for step in 0..600 {
        let op = program.op(ip);
        let kind = vm.spec.native(op).kind;
        // Quickening happens on the first execution of a quickable site.
        if kind == InstKind::Quickable && !quickened[ip] {
            quickened[ip] = true;
            events.quicken(ip, vm.quick);
        }
        let (next, taken) = match kind {
            InstKind::Plain | InstKind::Quickable => (ip + 1, false),
            InstKind::CondBranch => {
                if decide(&mut d) {
                    (program.target(ip).expect("cond target"), true)
                } else {
                    (ip + 1, false)
                }
            }
            InstKind::Jump => (program.target(ip).expect("jump target"), true),
            InstKind::Call => {
                if stack.len() < 16 {
                    stack.push(ip + 1);
                    (program.target(ip).expect("call target"), true)
                } else {
                    // Too deep: treat as a no-op fall-through is illegal for
                    // Call, so return instead (pop if possible).
                    match stack.pop() {
                        Some(r) => (r, true),
                        None => return step,
                    }
                }
            }
            InstKind::Return => match stack.pop() {
                Some(r) => (r, true),
                None => return step,
            },
        };
        if next >= n {
            return step;
        }
        events.transfer(ip, next, taken);
        ip = next;
    }
    600
}

fn all_techniques() -> Vec<Technique> {
    vec![
        Technique::Switch,
        Technique::Threaded,
        Technique::StaticRepl { budget: 30, selection: ReplicaSelection::RoundRobin },
        Technique::StaticRepl { budget: 13, selection: ReplicaSelection::Random { seed: 5 } },
        Technique::StaticSuper { budget: 20, algo: CoverAlgorithm::Greedy },
        Technique::StaticSuper { budget: 20, algo: CoverAlgorithm::Optimal },
        Technique::StaticBoth {
            replicas: 15,
            supers: 10,
            selection: ReplicaSelection::RoundRobin,
            algo: CoverAlgorithm::Greedy,
        },
        Technique::DynamicRepl,
        Technique::DynamicSuper,
        Technique::DynamicBoth,
        Technique::AcrossBb,
        Technique::WithStaticSuper { supers: 20, algo: CoverAlgorithm::Greedy },
        Technique::WithStaticSuperAcross { supers: 20, algo: CoverAlgorithm::Greedy },
        Technique::SubroutineThreading,
    ]
}

fn profile_of(vm: &TestVm, program: &ProgramCode, decisions: &[bool]) -> Profile {
    let mut collector = ProfileCollector::new(program);
    walk(vm, program, decisions, &mut collector);
    collector.into_profile()
}

fn run_technique(
    vm: &TestVm,
    program: &ProgramCode,
    decisions: &[bool],
    profile: &Profile,
    tech: Technique,
) -> RunResult {
    let t = translate(&vm.spec, program, tech, Some(profile), SuperSelection::gforth());
    assert_eq!(t.validate(), program.len(), "{tech}: layout invariants");
    let engine = Engine::new(
        IdealBtb::new(),
        Box::new(PerfectIcache::default()),
        CycleCosts { cpi: 1.0, mispredict_penalty: 10.0, icache_miss_penalty: 27.0 },
    );
    let mut m = Measurement::new(t, Runner::new(engine));
    walk(vm, program, decisions, &mut m);
    m.finish()
}

/// The body shared by `all_techniques_survive_random_programs` and the
/// pinned regression cases below: every technique translates, validates
/// and executes the program.
fn assert_all_techniques_survive(templ: &[Templ], decisions: &[bool]) -> Result<(), String> {
    let vm = test_vm();
    let program = build_program(&vm, templ);
    let profile = profile_of(&vm, &program, decisions);
    for tech in all_techniques() {
        let r = run_technique(&vm, &program, decisions, &profile, tech);
        prop_assert!(r.cycles >= 0.0, "{tech}: negative cycles on {templ:?}");
    }
    Ok(())
}

/// Every technique translates and executes every program shape.
#[test]
fn all_techniques_survive_random_programs() {
    prop::check(
        "all_techniques_survive_random_programs",
        prop::Config::from_env().cases(48),
        |src| {
            let (templ, decisions) = inputs(src, templ);
            assert_all_techniques_survive(&templ, &decisions)
        },
    );
}

/// Paper §7.3: plain, static replication and dynamic replication retire
/// exactly the same instructions and indirect branches.
#[test]
fn replication_preserves_instruction_counts() {
    prop::check(
        "replication_preserves_instruction_counts",
        prop::Config::from_env().cases(48),
        |src| {
            let (templ, decisions) = inputs(src, templ);
            assert_replication_preserves_counts(&templ, &decisions)
        },
    );
}

fn assert_replication_preserves_counts(templ: &[Templ], decisions: &[bool]) -> Result<(), String> {
    use ivm_harness::prop_assert_eq;
    let vm = test_vm();
    let program = build_program(&vm, templ);
    let profile = profile_of(&vm, &program, decisions);

    let plain = run_technique(&vm, &program, decisions, &profile, Technique::Threaded);
    let srepl = run_technique(
        &vm,
        &program,
        decisions,
        &profile,
        Technique::StaticRepl { budget: 30, selection: ReplicaSelection::RoundRobin },
    );
    let drepl = run_technique(&vm, &program, decisions, &profile, Technique::DynamicRepl);

    prop_assert_eq!(plain.counters.instructions, srepl.counters.instructions);
    prop_assert_eq!(plain.counters.indirect_branches, srepl.counters.indirect_branches);
    prop_assert_eq!(plain.counters.instructions, drepl.counters.instructions);
    prop_assert_eq!(plain.counters.indirect_branches, drepl.counters.indirect_branches);
    prop_assert_eq!(plain.counters.dispatches, drepl.counters.dispatches);
    Ok(())
}

/// Dynamic super and dynamic both differ only in sharing: identical
/// instruction counts, and sharing never *increases* code size.
#[test]
fn sharing_only_affects_code_size() {
    prop::check("sharing_only_affects_code_size", prop::Config::from_env().cases(48), |src| {
        let (templ, decisions) = inputs(src, templ);
        assert_sharing_only_affects_code_size(&templ, &decisions)
    });
}

fn assert_sharing_only_affects_code_size(
    templ: &[Templ],
    decisions: &[bool],
) -> Result<(), String> {
    use ivm_harness::prop_assert_eq;
    let vm = test_vm();
    let program = build_program(&vm, templ);
    let profile = profile_of(&vm, &program, decisions);

    let ds = run_technique(&vm, &program, decisions, &profile, Technique::DynamicSuper);
    let db = run_technique(&vm, &program, decisions, &profile, Technique::DynamicBoth);
    prop_assert_eq!(ds.counters.instructions, db.counters.instructions);
    prop_assert_eq!(ds.counters.indirect_branches, db.counters.indirect_branches);
    prop_assert!(ds.counters.code_bytes <= db.counters.code_bytes);
    Ok(())
}

/// Superinstructions and fall-through merging only remove dispatches
/// (for relocatable code — stubs for non-relocatable interiors may add
/// them, paper §5.2).
#[test]
fn dispatch_counts_are_monotone() {
    prop::check("dispatch_counts_are_monotone", prop::Config::from_env().cases(48), |src| {
        let (templ, decisions) = inputs(src, relocatable_templ);
        let vm = test_vm();
        let program = build_program(&vm, &templ);
        let profile = profile_of(&vm, &program, &decisions);

        let plain = run_technique(&vm, &program, &decisions, &profile, Technique::Threaded);
        let ds = run_technique(&vm, &program, &decisions, &profile, Technique::DynamicSuper);
        let across = run_technique(&vm, &program, &decisions, &profile, Technique::AcrossBb);
        prop_assert!(ds.counters.dispatches <= plain.counters.dispatches);
        prop_assert!(across.counters.dispatches <= ds.counters.dispatches);
        Ok(())
    });
}

/// The optimal parser never produces more units (dispatches) than
/// greedy under identical superinstruction tables.
#[test]
fn optimal_never_worse_than_greedy() {
    prop::check("optimal_never_worse_than_greedy", prop::Config::from_env().cases(48), |src| {
        let (templ, decisions) = inputs(src, templ);
        assert_optimal_never_worse(&templ, &decisions)
    });
}

fn assert_optimal_never_worse(templ: &[Templ], decisions: &[bool]) -> Result<(), String> {
    let vm = test_vm();
    let program = build_program(&vm, templ);
    let profile = profile_of(&vm, &program, decisions);

    let g = run_technique(
        &vm,
        &program,
        decisions,
        &profile,
        Technique::StaticSuper { budget: 20, algo: CoverAlgorithm::Greedy },
    );
    let o = run_technique(
        &vm,
        &program,
        decisions,
        &profile,
        Technique::StaticSuper { budget: 20, algo: CoverAlgorithm::Optimal },
    );
    prop_assert!(o.counters.dispatches <= g.counters.dispatches);
    Ok(())
}

/// Runs one concrete input through every invariant above that applies to
/// arbitrary (possibly non-relocatable) templates.
fn assert_all_invariants(templ: &[Templ], decisions: &[bool]) {
    assert_all_techniques_survive(templ, decisions).unwrap();
    assert_replication_preserves_counts(templ, decisions).unwrap();
    assert_sharing_only_affects_code_size(templ, decisions).unwrap();
    assert_optimal_never_worse(templ, decisions).unwrap();
}

/// Historical proptest counterexample (formerly
/// `tests/random_programs.proptest-regressions`, hash `d112a630…`): a
/// quickable instruction immediately followed by a backward jump onto the
/// quickened site. Exercises quick-gap handling in every translator.
#[test]
fn regression_quickable_then_jump_to_start() {
    use Templ::{Jump, Plain, Quickable};
    let templ = [Quickable, Plain(83), Jump(0), Plain(0)];
    let decisions = [false; 16];
    assert_all_invariants(&templ, &decisions);
}

/// Historical proptest counterexample (hash `bc21da93…`): a call-heavy
/// program whose call targets double as fall-through successors,
/// exercising side entries into merged regions.
#[test]
fn regression_call_targets_with_side_entries() {
    use Templ::{Call, Cond, Jump, Plain};
    let templ = [
        Plain(0),
        Plain(0),
        Plain(0),
        Plain(0),
        Plain(0),
        Plain(0),
        Plain(0),
        Plain(0),
        Plain(0),
        Cond(11),
        Plain(0),
        Call(22),
        Plain(6),
        Jump(90),
        Cond(82),
        Call(165),
        Plain(124),
        Plain(251),
        Plain(201),
        Call(40),
        Call(3),
        Cond(166),
        Call(106),
    ];
    let decisions = [
        false, false, true, true, false, true, true, false, true, true, false, true, false, false,
        false, true,
    ];
    assert_all_invariants(&templ, &decisions);
}
