/root/repo/target/debug/deps/ablations-93977096465dc52d.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-93977096465dc52d.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
