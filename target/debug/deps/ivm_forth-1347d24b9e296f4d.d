/root/repo/target/debug/deps/ivm_forth-1347d24b9e296f4d.d: crates/forthvm/src/lib.rs crates/forthvm/src/compiler.rs crates/forthvm/src/inst.rs crates/forthvm/src/measure.rs crates/forthvm/src/programs.rs crates/forthvm/src/vm.rs crates/forthvm/src/../forth/gray.fs crates/forthvm/src/../forth/bench-gc.fs crates/forthvm/src/../forth/tscp.fs crates/forthvm/src/../forth/vmgen.fs crates/forthvm/src/../forth/cross.fs crates/forthvm/src/../forth/brainless.fs crates/forthvm/src/../forth/brew.fs crates/forthvm/src/../forth/micro.fs

/root/repo/target/debug/deps/libivm_forth-1347d24b9e296f4d.rlib: crates/forthvm/src/lib.rs crates/forthvm/src/compiler.rs crates/forthvm/src/inst.rs crates/forthvm/src/measure.rs crates/forthvm/src/programs.rs crates/forthvm/src/vm.rs crates/forthvm/src/../forth/gray.fs crates/forthvm/src/../forth/bench-gc.fs crates/forthvm/src/../forth/tscp.fs crates/forthvm/src/../forth/vmgen.fs crates/forthvm/src/../forth/cross.fs crates/forthvm/src/../forth/brainless.fs crates/forthvm/src/../forth/brew.fs crates/forthvm/src/../forth/micro.fs

/root/repo/target/debug/deps/libivm_forth-1347d24b9e296f4d.rmeta: crates/forthvm/src/lib.rs crates/forthvm/src/compiler.rs crates/forthvm/src/inst.rs crates/forthvm/src/measure.rs crates/forthvm/src/programs.rs crates/forthvm/src/vm.rs crates/forthvm/src/../forth/gray.fs crates/forthvm/src/../forth/bench-gc.fs crates/forthvm/src/../forth/tscp.fs crates/forthvm/src/../forth/vmgen.fs crates/forthvm/src/../forth/cross.fs crates/forthvm/src/../forth/brainless.fs crates/forthvm/src/../forth/brew.fs crates/forthvm/src/../forth/micro.fs

crates/forthvm/src/lib.rs:
crates/forthvm/src/compiler.rs:
crates/forthvm/src/inst.rs:
crates/forthvm/src/measure.rs:
crates/forthvm/src/programs.rs:
crates/forthvm/src/vm.rs:
crates/forthvm/src/../forth/gray.fs:
crates/forthvm/src/../forth/bench-gc.fs:
crates/forthvm/src/../forth/tscp.fs:
crates/forthvm/src/../forth/vmgen.fs:
crates/forthvm/src/../forth/cross.fs:
crates/forthvm/src/../forth/brainless.fs:
crates/forthvm/src/../forth/brew.fs:
crates/forthvm/src/../forth/micro.fs:
