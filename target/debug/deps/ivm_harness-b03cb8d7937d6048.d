/root/repo/target/debug/deps/ivm_harness-b03cb8d7937d6048.d: crates/harness/src/lib.rs crates/harness/src/bench.rs crates/harness/src/prop.rs crates/harness/src/rng.rs

/root/repo/target/debug/deps/ivm_harness-b03cb8d7937d6048: crates/harness/src/lib.rs crates/harness/src/bench.rs crates/harness/src/prop.rs crates/harness/src/rng.rs

crates/harness/src/lib.rs:
crates/harness/src/bench.rs:
crates/harness/src/prop.rs:
crates/harness/src/rng.rs:
