/root/repo/target/debug/deps/ablations-ac79e13d961e72ac.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-ac79e13d961e72ac.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
