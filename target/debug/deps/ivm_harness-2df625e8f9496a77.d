/root/repo/target/debug/deps/ivm_harness-2df625e8f9496a77.d: crates/harness/src/lib.rs crates/harness/src/bench.rs crates/harness/src/prop.rs crates/harness/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libivm_harness-2df625e8f9496a77.rmeta: crates/harness/src/lib.rs crates/harness/src/bench.rs crates/harness/src/prop.rs crates/harness/src/rng.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/bench.rs:
crates/harness/src/prop.rs:
crates/harness/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
