/root/repo/target/debug/deps/ivm_core-07c253d56c172ba1.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/native.rs crates/core/src/profile.rs crates/core/src/program.rs crates/core/src/replicate.rs crates/core/src/slots.rs crates/core/src/spec.rs crates/core/src/superinst.rs crates/core/src/technique.rs crates/core/src/trace.rs crates/core/src/translate.rs

/root/repo/target/debug/deps/libivm_core-07c253d56c172ba1.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/native.rs crates/core/src/profile.rs crates/core/src/program.rs crates/core/src/replicate.rs crates/core/src/slots.rs crates/core/src/spec.rs crates/core/src/superinst.rs crates/core/src/technique.rs crates/core/src/trace.rs crates/core/src/translate.rs

/root/repo/target/debug/deps/libivm_core-07c253d56c172ba1.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/native.rs crates/core/src/profile.rs crates/core/src/program.rs crates/core/src/replicate.rs crates/core/src/slots.rs crates/core/src/spec.rs crates/core/src/superinst.rs crates/core/src/technique.rs crates/core/src/trace.rs crates/core/src/translate.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/events.rs:
crates/core/src/layout.rs:
crates/core/src/native.rs:
crates/core/src/profile.rs:
crates/core/src/program.rs:
crates/core/src/replicate.rs:
crates/core/src/slots.rs:
crates/core/src/spec.rs:
crates/core/src/superinst.rs:
crates/core/src/technique.rs:
crates/core/src/trace.rs:
crates/core/src/translate.rs:
