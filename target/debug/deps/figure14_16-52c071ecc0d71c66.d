/root/repo/target/debug/deps/figure14_16-52c071ecc0d71c66.d: crates/bench/src/bin/figure14_16.rs

/root/repo/target/debug/deps/figure14_16-52c071ecc0d71c66: crates/bench/src/bin/figure14_16.rs

crates/bench/src/bin/figure14_16.rs:
