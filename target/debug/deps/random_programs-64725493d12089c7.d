/root/repo/target/debug/deps/random_programs-64725493d12089c7.d: tests/random_programs.rs Cargo.toml

/root/repo/target/debug/deps/librandom_programs-64725493d12089c7.rmeta: tests/random_programs.rs Cargo.toml

tests/random_programs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
