/root/repo/target/debug/deps/ivm_cache-8214705c3eed7d63.d: crates/simcache/src/lib.rs crates/simcache/src/cost.rs crates/simcache/src/cpu.rs crates/simcache/src/icache.rs crates/simcache/src/trace_cache.rs

/root/repo/target/debug/deps/ivm_cache-8214705c3eed7d63: crates/simcache/src/lib.rs crates/simcache/src/cost.rs crates/simcache/src/cpu.rs crates/simcache/src/icache.rs crates/simcache/src/trace_cache.rs

crates/simcache/src/lib.rs:
crates/simcache/src/cost.rs:
crates/simcache/src/cpu.rs:
crates/simcache/src/icache.rs:
crates/simcache/src/trace_cache.rs:
