/root/repo/target/debug/deps/figure9-52dbcaf7e8244452.d: crates/bench/src/bin/figure9.rs

/root/repo/target/debug/deps/figure9-52dbcaf7e8244452: crates/bench/src/bin/figure9.rs

crates/bench/src/bin/figure9.rs:
