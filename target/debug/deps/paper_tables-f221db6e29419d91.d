/root/repo/target/debug/deps/paper_tables-f221db6e29419d91.d: crates/bpred/tests/paper_tables.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_tables-f221db6e29419d91.rmeta: crates/bpred/tests/paper_tables.rs Cargo.toml

crates/bpred/tests/paper_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
