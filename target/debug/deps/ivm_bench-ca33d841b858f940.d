/root/repo/target/debug/deps/ivm_bench-ca33d841b858f940.d: crates/bench/src/lib.rs crates/bench/src/native_model.rs

/root/repo/target/debug/deps/libivm_bench-ca33d841b858f940.rlib: crates/bench/src/lib.rs crates/bench/src/native_model.rs

/root/repo/target/debug/deps/libivm_bench-ca33d841b858f940.rmeta: crates/bench/src/lib.rs crates/bench/src/native_model.rs

crates/bench/src/lib.rs:
crates/bench/src/native_model.rs:
