/root/repo/target/debug/deps/ivm_cache-b6f358ebc0c72eb6.d: crates/simcache/src/lib.rs crates/simcache/src/cost.rs crates/simcache/src/cpu.rs crates/simcache/src/icache.rs crates/simcache/src/trace_cache.rs

/root/repo/target/debug/deps/libivm_cache-b6f358ebc0c72eb6.rlib: crates/simcache/src/lib.rs crates/simcache/src/cost.rs crates/simcache/src/cpu.rs crates/simcache/src/icache.rs crates/simcache/src/trace_cache.rs

/root/repo/target/debug/deps/libivm_cache-b6f358ebc0c72eb6.rmeta: crates/simcache/src/lib.rs crates/simcache/src/cost.rs crates/simcache/src/cpu.rs crates/simcache/src/icache.rs crates/simcache/src/trace_cache.rs

crates/simcache/src/lib.rs:
crates/simcache/src/cost.rs:
crates/simcache/src/cpu.rs:
crates/simcache/src/icache.rs:
crates/simcache/src/trace_cache.rs:
