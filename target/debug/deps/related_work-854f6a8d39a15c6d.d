/root/repo/target/debug/deps/related_work-854f6a8d39a15c6d.d: crates/bench/src/bin/related_work.rs Cargo.toml

/root/repo/target/debug/deps/librelated_work-854f6a8d39a15c6d.rmeta: crates/bench/src/bin/related_work.rs Cargo.toml

crates/bench/src/bin/related_work.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
