/root/repo/target/debug/deps/table8-4508e821312600af.d: crates/bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-4508e821312600af: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
