/root/repo/target/debug/deps/section3-44056265fb5836ac.d: crates/bench/src/bin/section3.rs

/root/repo/target/debug/deps/section3-44056265fb5836ac: crates/bench/src/bin/section3.rs

crates/bench/src/bin/section3.rs:
