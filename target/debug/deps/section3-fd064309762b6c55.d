/root/repo/target/debug/deps/section3-fd064309762b6c55.d: crates/bench/src/bin/section3.rs

/root/repo/target/debug/deps/section3-fd064309762b6c55: crates/bench/src/bin/section3.rs

crates/bench/src/bin/section3.rs:
