/root/repo/target/debug/deps/properties-cbe9bde4a927c590.d: crates/bpred/tests/properties.rs

/root/repo/target/debug/deps/properties-cbe9bde4a927c590: crates/bpred/tests/properties.rs

crates/bpred/tests/properties.rs:
