/root/repo/target/debug/deps/section3-b7e9818a926b75f5.d: crates/bench/src/bin/section3.rs Cargo.toml

/root/repo/target/debug/deps/libsection3-b7e9818a926b75f5.rmeta: crates/bench/src/bin/section3.rs Cargo.toml

crates/bench/src/bin/section3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
