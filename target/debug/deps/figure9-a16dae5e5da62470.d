/root/repo/target/debug/deps/figure9-a16dae5e5da62470.d: crates/bench/src/bin/figure9.rs Cargo.toml

/root/repo/target/debug/deps/libfigure9-a16dae5e5da62470.rmeta: crates/bench/src/bin/figure9.rs Cargo.toml

crates/bench/src/bin/figure9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
