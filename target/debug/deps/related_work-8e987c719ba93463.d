/root/repo/target/debug/deps/related_work-8e987c719ba93463.d: crates/bench/src/bin/related_work.rs

/root/repo/target/debug/deps/related_work-8e987c719ba93463: crates/bench/src/bin/related_work.rs

crates/bench/src/bin/related_work.rs:
