/root/repo/target/debug/deps/scaling-d0dbd2111c3da0b6.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-d0dbd2111c3da0b6: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
