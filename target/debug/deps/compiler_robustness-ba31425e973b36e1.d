/root/repo/target/debug/deps/compiler_robustness-ba31425e973b36e1.d: tests/compiler_robustness.rs

/root/repo/target/debug/deps/compiler_robustness-ba31425e973b36e1: tests/compiler_robustness.rs

tests/compiler_robustness.rs:
