/root/repo/target/debug/deps/ablations-1e862dbc5da0ae6b.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-1e862dbc5da0ae6b: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
