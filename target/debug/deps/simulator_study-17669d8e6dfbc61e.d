/root/repo/target/debug/deps/simulator_study-17669d8e6dfbc61e.d: crates/bench/src/bin/simulator_study.rs

/root/repo/target/debug/deps/simulator_study-17669d8e6dfbc61e: crates/bench/src/bin/simulator_study.rs

crates/bench/src/bin/simulator_study.rs:
