/root/repo/target/debug/deps/figure10_13-c23fa2c49698cb6a.d: crates/bench/src/bin/figure10_13.rs Cargo.toml

/root/repo/target/debug/deps/libfigure10_13-c23fa2c49698cb6a.rmeta: crates/bench/src/bin/figure10_13.rs Cargo.toml

crates/bench/src/bin/figure10_13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
