/root/repo/target/debug/deps/techniques-619b5633651bb45f.d: crates/core/tests/techniques.rs Cargo.toml

/root/repo/target/debug/deps/libtechniques-619b5633651bb45f.rmeta: crates/core/tests/techniques.rs Cargo.toml

crates/core/tests/techniques.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
