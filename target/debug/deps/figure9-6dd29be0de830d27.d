/root/repo/target/debug/deps/figure9-6dd29be0de830d27.d: crates/bench/src/bin/figure9.rs

/root/repo/target/debug/deps/figure9-6dd29be0de830d27: crates/bench/src/bin/figure9.rs

crates/bench/src/bin/figure9.rs:
