/root/repo/target/debug/deps/figure10_13-db9a84c48f38eb29.d: crates/bench/src/bin/figure10_13.rs

/root/repo/target/debug/deps/figure10_13-db9a84c48f38eb29: crates/bench/src/bin/figure10_13.rs

crates/bench/src/bin/figure10_13.rs:
