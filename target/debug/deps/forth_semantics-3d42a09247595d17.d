/root/repo/target/debug/deps/forth_semantics-3d42a09247595d17.d: tests/forth_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libforth_semantics-3d42a09247595d17.rmeta: tests/forth_semantics.rs Cargo.toml

tests/forth_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
