/root/repo/target/debug/deps/superlen-c524b949bb2c3c92.d: crates/bench/src/bin/superlen.rs Cargo.toml

/root/repo/target/debug/deps/libsuperlen-c524b949bb2c3c92.rmeta: crates/bench/src/bin/superlen.rs Cargo.toml

crates/bench/src/bin/superlen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
