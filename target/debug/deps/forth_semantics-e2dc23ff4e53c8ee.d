/root/repo/target/debug/deps/forth_semantics-e2dc23ff4e53c8ee.d: tests/forth_semantics.rs

/root/repo/target/debug/deps/forth_semantics-e2dc23ff4e53c8ee: tests/forth_semantics.rs

tests/forth_semantics.rs:
