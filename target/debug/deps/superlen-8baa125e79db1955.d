/root/repo/target/debug/deps/superlen-8baa125e79db1955.d: crates/bench/src/bin/superlen.rs Cargo.toml

/root/repo/target/debug/deps/libsuperlen-8baa125e79db1955.rmeta: crates/bench/src/bin/superlen.rs Cargo.toml

crates/bench/src/bin/superlen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
