/root/repo/target/debug/deps/jvm_robustness-f2580e6f6dc3d5ba.d: tests/jvm_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libjvm_robustness-f2580e6f6dc3d5ba.rmeta: tests/jvm_robustness.rs Cargo.toml

tests/jvm_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
