/root/repo/target/debug/deps/ivm-32dc565150479bc3.d: src/lib.rs

/root/repo/target/debug/deps/libivm-32dc565150479bc3.rlib: src/lib.rs

/root/repo/target/debug/deps/libivm-32dc565150479bc3.rmeta: src/lib.rs

src/lib.rs:
