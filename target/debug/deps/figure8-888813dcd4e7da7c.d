/root/repo/target/debug/deps/figure8-888813dcd4e7da7c.d: crates/bench/src/bin/figure8.rs

/root/repo/target/debug/deps/figure8-888813dcd4e7da7c: crates/bench/src/bin/figure8.rs

crates/bench/src/bin/figure8.rs:
