/root/repo/target/debug/deps/ivm_cache-24643c0e6972e68e.d: crates/simcache/src/lib.rs crates/simcache/src/cost.rs crates/simcache/src/cpu.rs crates/simcache/src/icache.rs crates/simcache/src/trace_cache.rs Cargo.toml

/root/repo/target/debug/deps/libivm_cache-24643c0e6972e68e.rmeta: crates/simcache/src/lib.rs crates/simcache/src/cost.rs crates/simcache/src/cpu.rs crates/simcache/src/icache.rs crates/simcache/src/trace_cache.rs Cargo.toml

crates/simcache/src/lib.rs:
crates/simcache/src/cost.rs:
crates/simcache/src/cpu.rs:
crates/simcache/src/icache.rs:
crates/simcache/src/trace_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
