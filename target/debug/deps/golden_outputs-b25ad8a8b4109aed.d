/root/repo/target/debug/deps/golden_outputs-b25ad8a8b4109aed.d: tests/golden_outputs.rs

/root/repo/target/debug/deps/golden_outputs-b25ad8a8b4109aed: tests/golden_outputs.rs

tests/golden_outputs.rs:
