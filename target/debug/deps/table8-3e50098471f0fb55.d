/root/repo/target/debug/deps/table8-3e50098471f0fb55.d: crates/bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-3e50098471f0fb55: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
