/root/repo/target/debug/deps/bin_smoke-7cd7c2a3737520ff.d: crates/bench/tests/bin_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libbin_smoke-7cd7c2a3737520ff.rmeta: crates/bench/tests/bin_smoke.rs Cargo.toml

crates/bench/tests/bin_smoke.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_ablations=placeholder:ablations
# env-dep:CARGO_BIN_EXE_figure10_13=placeholder:figure10_13
# env-dep:CARGO_BIN_EXE_figure14_16=placeholder:figure14_16
# env-dep:CARGO_BIN_EXE_figure7=placeholder:figure7
# env-dep:CARGO_BIN_EXE_figure8=placeholder:figure8
# env-dep:CARGO_BIN_EXE_figure9=placeholder:figure9
# env-dep:CARGO_BIN_EXE_related_work=placeholder:related_work
# env-dep:CARGO_BIN_EXE_scaling=placeholder:scaling
# env-dep:CARGO_BIN_EXE_section3=placeholder:section3
# env-dep:CARGO_BIN_EXE_simulator_study=placeholder:simulator_study
# env-dep:CARGO_BIN_EXE_superlen=placeholder:superlen
# env-dep:CARGO_BIN_EXE_table1_4=placeholder:table1_4
# env-dep:CARGO_BIN_EXE_table5=placeholder:table5
# env-dep:CARGO_BIN_EXE_table8=placeholder:table8
# env-dep:CARGO_BIN_EXE_table9_10=placeholder:table9_10
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
