/root/repo/target/debug/deps/figure14_16-7f689e6d69ce8647.d: crates/bench/src/bin/figure14_16.rs Cargo.toml

/root/repo/target/debug/deps/libfigure14_16-7f689e6d69ce8647.rmeta: crates/bench/src/bin/figure14_16.rs Cargo.toml

crates/bench/src/bin/figure14_16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
