/root/repo/target/debug/deps/scaling-681eeebd31de18f7.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-681eeebd31de18f7: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
