/root/repo/target/debug/deps/ablations-b2acd88069fdee03.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-b2acd88069fdee03: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
