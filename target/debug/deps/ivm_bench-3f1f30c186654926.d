/root/repo/target/debug/deps/ivm_bench-3f1f30c186654926.d: crates/bench/src/lib.rs crates/bench/src/native_model.rs Cargo.toml

/root/repo/target/debug/deps/libivm_bench-3f1f30c186654926.rmeta: crates/bench/src/lib.rs crates/bench/src/native_model.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/native_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
