/root/repo/target/debug/deps/dispatch-0ad6948da89f5e4f.d: crates/bench/benches/dispatch.rs Cargo.toml

/root/repo/target/debug/deps/libdispatch-0ad6948da89f5e4f.rmeta: crates/bench/benches/dispatch.rs Cargo.toml

crates/bench/benches/dispatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
