/root/repo/target/debug/deps/ivm_bpred-b1e9812f18da531a.d: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/cascaded.rs crates/bpred/src/case_block.rs crates/bpred/src/ideal.rs crates/bpred/src/stats.rs crates/bpred/src/two_bit.rs crates/bpred/src/two_level.rs Cargo.toml

/root/repo/target/debug/deps/libivm_bpred-b1e9812f18da531a.rmeta: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/cascaded.rs crates/bpred/src/case_block.rs crates/bpred/src/ideal.rs crates/bpred/src/stats.rs crates/bpred/src/two_bit.rs crates/bpred/src/two_level.rs Cargo.toml

crates/bpred/src/lib.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/cascaded.rs:
crates/bpred/src/case_block.rs:
crates/bpred/src/ideal.rs:
crates/bpred/src/stats.rs:
crates/bpred/src/two_bit.rs:
crates/bpred/src/two_level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
