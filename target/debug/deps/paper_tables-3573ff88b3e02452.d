/root/repo/target/debug/deps/paper_tables-3573ff88b3e02452.d: crates/bpred/tests/paper_tables.rs

/root/repo/target/debug/deps/paper_tables-3573ff88b3e02452: crates/bpred/tests/paper_tables.rs

crates/bpred/tests/paper_tables.rs:
