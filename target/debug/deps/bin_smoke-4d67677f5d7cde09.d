/root/repo/target/debug/deps/bin_smoke-4d67677f5d7cde09.d: crates/bench/tests/bin_smoke.rs

/root/repo/target/debug/deps/bin_smoke-4d67677f5d7cde09: crates/bench/tests/bin_smoke.rs

crates/bench/tests/bin_smoke.rs:

# env-dep:CARGO_BIN_EXE_ablations=/root/repo/target/debug/ablations
# env-dep:CARGO_BIN_EXE_figure10_13=/root/repo/target/debug/figure10_13
# env-dep:CARGO_BIN_EXE_figure14_16=/root/repo/target/debug/figure14_16
# env-dep:CARGO_BIN_EXE_figure7=/root/repo/target/debug/figure7
# env-dep:CARGO_BIN_EXE_figure8=/root/repo/target/debug/figure8
# env-dep:CARGO_BIN_EXE_figure9=/root/repo/target/debug/figure9
# env-dep:CARGO_BIN_EXE_related_work=/root/repo/target/debug/related_work
# env-dep:CARGO_BIN_EXE_scaling=/root/repo/target/debug/scaling
# env-dep:CARGO_BIN_EXE_section3=/root/repo/target/debug/section3
# env-dep:CARGO_BIN_EXE_simulator_study=/root/repo/target/debug/simulator_study
# env-dep:CARGO_BIN_EXE_superlen=/root/repo/target/debug/superlen
# env-dep:CARGO_BIN_EXE_table1_4=/root/repo/target/debug/table1_4
# env-dep:CARGO_BIN_EXE_table5=/root/repo/target/debug/table5
# env-dep:CARGO_BIN_EXE_table8=/root/repo/target/debug/table8
# env-dep:CARGO_BIN_EXE_table9_10=/root/repo/target/debug/table9_10
