/root/repo/target/debug/deps/ivm_harness-74b6dc9b323783ee.d: crates/harness/src/lib.rs crates/harness/src/bench.rs crates/harness/src/prop.rs crates/harness/src/rng.rs

/root/repo/target/debug/deps/libivm_harness-74b6dc9b323783ee.rlib: crates/harness/src/lib.rs crates/harness/src/bench.rs crates/harness/src/prop.rs crates/harness/src/rng.rs

/root/repo/target/debug/deps/libivm_harness-74b6dc9b323783ee.rmeta: crates/harness/src/lib.rs crates/harness/src/bench.rs crates/harness/src/prop.rs crates/harness/src/rng.rs

crates/harness/src/lib.rs:
crates/harness/src/bench.rs:
crates/harness/src/prop.rs:
crates/harness/src/rng.rs:
