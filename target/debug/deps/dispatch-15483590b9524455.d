/root/repo/target/debug/deps/dispatch-15483590b9524455.d: crates/bench/benches/dispatch.rs

/root/repo/target/debug/deps/dispatch-15483590b9524455: crates/bench/benches/dispatch.rs

crates/bench/benches/dispatch.rs:
