/root/repo/target/debug/deps/ivm_core-38d0156d3a68d999.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/native.rs crates/core/src/profile.rs crates/core/src/program.rs crates/core/src/replicate.rs crates/core/src/slots.rs crates/core/src/spec.rs crates/core/src/superinst.rs crates/core/src/technique.rs crates/core/src/trace.rs crates/core/src/translate.rs Cargo.toml

/root/repo/target/debug/deps/libivm_core-38d0156d3a68d999.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/native.rs crates/core/src/profile.rs crates/core/src/program.rs crates/core/src/replicate.rs crates/core/src/slots.rs crates/core/src/spec.rs crates/core/src/superinst.rs crates/core/src/technique.rs crates/core/src/trace.rs crates/core/src/translate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/events.rs:
crates/core/src/layout.rs:
crates/core/src/native.rs:
crates/core/src/profile.rs:
crates/core/src/program.rs:
crates/core/src/replicate.rs:
crates/core/src/slots.rs:
crates/core/src/spec.rs:
crates/core/src/superinst.rs:
crates/core/src/technique.rs:
crates/core/src/trace.rs:
crates/core/src/translate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
