/root/repo/target/debug/deps/scaling-5de2949091b7a374.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-5de2949091b7a374.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
