/root/repo/target/debug/deps/replica_pinning-650a86f8d3f98eed.d: crates/core/tests/replica_pinning.rs Cargo.toml

/root/repo/target/debug/deps/libreplica_pinning-650a86f8d3f98eed.rmeta: crates/core/tests/replica_pinning.rs Cargo.toml

crates/core/tests/replica_pinning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
