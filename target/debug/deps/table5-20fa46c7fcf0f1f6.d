/root/repo/target/debug/deps/table5-20fa46c7fcf0f1f6.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-20fa46c7fcf0f1f6.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
