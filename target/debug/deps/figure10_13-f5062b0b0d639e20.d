/root/repo/target/debug/deps/figure10_13-f5062b0b0d639e20.d: crates/bench/src/bin/figure10_13.rs

/root/repo/target/debug/deps/figure10_13-f5062b0b0d639e20: crates/bench/src/bin/figure10_13.rs

crates/bench/src/bin/figure10_13.rs:
