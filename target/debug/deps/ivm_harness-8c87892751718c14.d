/root/repo/target/debug/deps/ivm_harness-8c87892751718c14.d: crates/harness/src/lib.rs crates/harness/src/bench.rs crates/harness/src/prop.rs crates/harness/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libivm_harness-8c87892751718c14.rmeta: crates/harness/src/lib.rs crates/harness/src/bench.rs crates/harness/src/prop.rs crates/harness/src/rng.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/bench.rs:
crates/harness/src/prop.rs:
crates/harness/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
