/root/repo/target/debug/deps/figure14_16-dc95fca9ead0c10a.d: crates/bench/src/bin/figure14_16.rs Cargo.toml

/root/repo/target/debug/deps/libfigure14_16-dc95fca9ead0c10a.rmeta: crates/bench/src/bin/figure14_16.rs Cargo.toml

crates/bench/src/bin/figure14_16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
