/root/repo/target/debug/deps/jvm_robustness-f9f854bcaa76127b.d: tests/jvm_robustness.rs

/root/repo/target/debug/deps/jvm_robustness-f9f854bcaa76127b: tests/jvm_robustness.rs

tests/jvm_robustness.rs:
