/root/repo/target/debug/deps/compiler_robustness-c8f31ac656ec2aba.d: tests/compiler_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libcompiler_robustness-c8f31ac656ec2aba.rmeta: tests/compiler_robustness.rs Cargo.toml

tests/compiler_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
