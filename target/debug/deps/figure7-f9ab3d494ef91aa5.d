/root/repo/target/debug/deps/figure7-f9ab3d494ef91aa5.d: crates/bench/src/bin/figure7.rs Cargo.toml

/root/repo/target/debug/deps/libfigure7-f9ab3d494ef91aa5.rmeta: crates/bench/src/bin/figure7.rs Cargo.toml

crates/bench/src/bin/figure7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
