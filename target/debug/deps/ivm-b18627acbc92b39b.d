/root/repo/target/debug/deps/ivm-b18627acbc92b39b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libivm-b18627acbc92b39b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
