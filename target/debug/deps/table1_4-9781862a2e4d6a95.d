/root/repo/target/debug/deps/table1_4-9781862a2e4d6a95.d: crates/bench/src/bin/table1_4.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_4-9781862a2e4d6a95.rmeta: crates/bench/src/bin/table1_4.rs Cargo.toml

crates/bench/src/bin/table1_4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
