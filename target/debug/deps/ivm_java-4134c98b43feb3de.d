/root/repo/target/debug/deps/ivm_java-4134c98b43feb3de.d: crates/javavm/src/lib.rs crates/javavm/src/asm.rs crates/javavm/src/inst.rs crates/javavm/src/measure.rs crates/javavm/src/programs/mod.rs crates/javavm/src/programs/compress.rs crates/javavm/src/programs/db.rs crates/javavm/src/programs/jack.rs crates/javavm/src/programs/javac.rs crates/javavm/src/programs/jess.rs crates/javavm/src/programs/mpeg.rs crates/javavm/src/programs/mtrt.rs crates/javavm/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libivm_java-4134c98b43feb3de.rmeta: crates/javavm/src/lib.rs crates/javavm/src/asm.rs crates/javavm/src/inst.rs crates/javavm/src/measure.rs crates/javavm/src/programs/mod.rs crates/javavm/src/programs/compress.rs crates/javavm/src/programs/db.rs crates/javavm/src/programs/jack.rs crates/javavm/src/programs/javac.rs crates/javavm/src/programs/jess.rs crates/javavm/src/programs/mpeg.rs crates/javavm/src/programs/mtrt.rs crates/javavm/src/vm.rs Cargo.toml

crates/javavm/src/lib.rs:
crates/javavm/src/asm.rs:
crates/javavm/src/inst.rs:
crates/javavm/src/measure.rs:
crates/javavm/src/programs/mod.rs:
crates/javavm/src/programs/compress.rs:
crates/javavm/src/programs/db.rs:
crates/javavm/src/programs/jack.rs:
crates/javavm/src/programs/javac.rs:
crates/javavm/src/programs/jess.rs:
crates/javavm/src/programs/mpeg.rs:
crates/javavm/src/programs/mtrt.rs:
crates/javavm/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
