/root/repo/target/debug/deps/ivm-172bc026e9f10316.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libivm-172bc026e9f10316.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
