/root/repo/target/debug/deps/figure7-df41ee78a4b812ca.d: crates/bench/src/bin/figure7.rs

/root/repo/target/debug/deps/figure7-df41ee78a4b812ca: crates/bench/src/bin/figure7.rs

crates/bench/src/bin/figure7.rs:
