/root/repo/target/debug/deps/cross_stack-a1fc2b03becdf167.d: tests/cross_stack.rs

/root/repo/target/debug/deps/cross_stack-a1fc2b03becdf167: tests/cross_stack.rs

tests/cross_stack.rs:
