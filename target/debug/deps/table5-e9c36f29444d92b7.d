/root/repo/target/debug/deps/table5-e9c36f29444d92b7.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-e9c36f29444d92b7: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
