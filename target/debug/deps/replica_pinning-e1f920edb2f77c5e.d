/root/repo/target/debug/deps/replica_pinning-e1f920edb2f77c5e.d: crates/core/tests/replica_pinning.rs

/root/repo/target/debug/deps/replica_pinning-e1f920edb2f77c5e: crates/core/tests/replica_pinning.rs

crates/core/tests/replica_pinning.rs:
