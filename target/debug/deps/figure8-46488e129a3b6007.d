/root/repo/target/debug/deps/figure8-46488e129a3b6007.d: crates/bench/src/bin/figure8.rs Cargo.toml

/root/repo/target/debug/deps/libfigure8-46488e129a3b6007.rmeta: crates/bench/src/bin/figure8.rs Cargo.toml

crates/bench/src/bin/figure8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
