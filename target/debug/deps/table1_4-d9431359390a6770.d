/root/repo/target/debug/deps/table1_4-d9431359390a6770.d: crates/bench/src/bin/table1_4.rs

/root/repo/target/debug/deps/table1_4-d9431359390a6770: crates/bench/src/bin/table1_4.rs

crates/bench/src/bin/table1_4.rs:
