/root/repo/target/debug/deps/ivm_bpred-66f712edaf4ca7dc.d: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/cascaded.rs crates/bpred/src/case_block.rs crates/bpred/src/ideal.rs crates/bpred/src/stats.rs crates/bpred/src/two_bit.rs crates/bpred/src/two_level.rs

/root/repo/target/debug/deps/libivm_bpred-66f712edaf4ca7dc.rlib: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/cascaded.rs crates/bpred/src/case_block.rs crates/bpred/src/ideal.rs crates/bpred/src/stats.rs crates/bpred/src/two_bit.rs crates/bpred/src/two_level.rs

/root/repo/target/debug/deps/libivm_bpred-66f712edaf4ca7dc.rmeta: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/cascaded.rs crates/bpred/src/case_block.rs crates/bpred/src/ideal.rs crates/bpred/src/stats.rs crates/bpred/src/two_bit.rs crates/bpred/src/two_level.rs

crates/bpred/src/lib.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/cascaded.rs:
crates/bpred/src/case_block.rs:
crates/bpred/src/ideal.rs:
crates/bpred/src/stats.rs:
crates/bpred/src/two_bit.rs:
crates/bpred/src/two_level.rs:
