/root/repo/target/debug/deps/table9_10-994e2ba7788c8210.d: crates/bench/src/bin/table9_10.rs

/root/repo/target/debug/deps/table9_10-994e2ba7788c8210: crates/bench/src/bin/table9_10.rs

crates/bench/src/bin/table9_10.rs:
