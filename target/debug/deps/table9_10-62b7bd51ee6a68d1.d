/root/repo/target/debug/deps/table9_10-62b7bd51ee6a68d1.d: crates/bench/src/bin/table9_10.rs Cargo.toml

/root/repo/target/debug/deps/libtable9_10-62b7bd51ee6a68d1.rmeta: crates/bench/src/bin/table9_10.rs Cargo.toml

crates/bench/src/bin/table9_10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
