/root/repo/target/debug/deps/random_programs-6c10cfabd8856740.d: tests/random_programs.rs

/root/repo/target/debug/deps/random_programs-6c10cfabd8856740: tests/random_programs.rs

tests/random_programs.rs:
