/root/repo/target/debug/deps/cross_stack-746d6da034d5217c.d: tests/cross_stack.rs Cargo.toml

/root/repo/target/debug/deps/libcross_stack-746d6da034d5217c.rmeta: tests/cross_stack.rs Cargo.toml

tests/cross_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
