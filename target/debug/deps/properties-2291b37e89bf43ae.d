/root/repo/target/debug/deps/properties-2291b37e89bf43ae.d: crates/simcache/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2291b37e89bf43ae.rmeta: crates/simcache/tests/properties.rs Cargo.toml

crates/simcache/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
