/root/repo/target/debug/deps/table9_10-92c92991f115c7f3.d: crates/bench/src/bin/table9_10.rs

/root/repo/target/debug/deps/table9_10-92c92991f115c7f3: crates/bench/src/bin/table9_10.rs

crates/bench/src/bin/table9_10.rs:
