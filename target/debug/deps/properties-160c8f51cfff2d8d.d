/root/repo/target/debug/deps/properties-160c8f51cfff2d8d.d: crates/simcache/tests/properties.rs

/root/repo/target/debug/deps/properties-160c8f51cfff2d8d: crates/simcache/tests/properties.rs

crates/simcache/tests/properties.rs:
