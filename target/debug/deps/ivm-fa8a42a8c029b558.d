/root/repo/target/debug/deps/ivm-fa8a42a8c029b558.d: src/lib.rs

/root/repo/target/debug/deps/ivm-fa8a42a8c029b558: src/lib.rs

src/lib.rs:
