/root/repo/target/debug/deps/ivm_forth-cb5eae4129cabef4.d: crates/forthvm/src/lib.rs crates/forthvm/src/compiler.rs crates/forthvm/src/inst.rs crates/forthvm/src/measure.rs crates/forthvm/src/programs.rs crates/forthvm/src/vm.rs crates/forthvm/src/../forth/gray.fs crates/forthvm/src/../forth/bench-gc.fs crates/forthvm/src/../forth/tscp.fs crates/forthvm/src/../forth/vmgen.fs crates/forthvm/src/../forth/cross.fs crates/forthvm/src/../forth/brainless.fs crates/forthvm/src/../forth/brew.fs crates/forthvm/src/../forth/micro.fs Cargo.toml

/root/repo/target/debug/deps/libivm_forth-cb5eae4129cabef4.rmeta: crates/forthvm/src/lib.rs crates/forthvm/src/compiler.rs crates/forthvm/src/inst.rs crates/forthvm/src/measure.rs crates/forthvm/src/programs.rs crates/forthvm/src/vm.rs crates/forthvm/src/../forth/gray.fs crates/forthvm/src/../forth/bench-gc.fs crates/forthvm/src/../forth/tscp.fs crates/forthvm/src/../forth/vmgen.fs crates/forthvm/src/../forth/cross.fs crates/forthvm/src/../forth/brainless.fs crates/forthvm/src/../forth/brew.fs crates/forthvm/src/../forth/micro.fs Cargo.toml

crates/forthvm/src/lib.rs:
crates/forthvm/src/compiler.rs:
crates/forthvm/src/inst.rs:
crates/forthvm/src/measure.rs:
crates/forthvm/src/programs.rs:
crates/forthvm/src/vm.rs:
crates/forthvm/src/../forth/gray.fs:
crates/forthvm/src/../forth/bench-gc.fs:
crates/forthvm/src/../forth/tscp.fs:
crates/forthvm/src/../forth/vmgen.fs:
crates/forthvm/src/../forth/cross.fs:
crates/forthvm/src/../forth/brainless.fs:
crates/forthvm/src/../forth/brew.fs:
crates/forthvm/src/../forth/micro.fs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
