/root/repo/target/debug/deps/superlen-a7da9198dac0952d.d: crates/bench/src/bin/superlen.rs

/root/repo/target/debug/deps/superlen-a7da9198dac0952d: crates/bench/src/bin/superlen.rs

crates/bench/src/bin/superlen.rs:
