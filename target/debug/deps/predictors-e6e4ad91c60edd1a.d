/root/repo/target/debug/deps/predictors-e6e4ad91c60edd1a.d: crates/bench/benches/predictors.rs

/root/repo/target/debug/deps/predictors-e6e4ad91c60edd1a: crates/bench/benches/predictors.rs

crates/bench/benches/predictors.rs:
