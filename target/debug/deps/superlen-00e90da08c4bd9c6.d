/root/repo/target/debug/deps/superlen-00e90da08c4bd9c6.d: crates/bench/src/bin/superlen.rs

/root/repo/target/debug/deps/superlen-00e90da08c4bd9c6: crates/bench/src/bin/superlen.rs

crates/bench/src/bin/superlen.rs:
