/root/repo/target/debug/deps/figure7-73bc125a3f00402c.d: crates/bench/src/bin/figure7.rs

/root/repo/target/debug/deps/figure7-73bc125a3f00402c: crates/bench/src/bin/figure7.rs

crates/bench/src/bin/figure7.rs:
