/root/repo/target/debug/deps/simulator_study-9bdf89b7019192e8.d: crates/bench/src/bin/simulator_study.rs

/root/repo/target/debug/deps/simulator_study-9bdf89b7019192e8: crates/bench/src/bin/simulator_study.rs

crates/bench/src/bin/simulator_study.rs:
