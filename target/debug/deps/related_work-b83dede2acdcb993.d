/root/repo/target/debug/deps/related_work-b83dede2acdcb993.d: crates/bench/src/bin/related_work.rs

/root/repo/target/debug/deps/related_work-b83dede2acdcb993: crates/bench/src/bin/related_work.rs

crates/bench/src/bin/related_work.rs:
