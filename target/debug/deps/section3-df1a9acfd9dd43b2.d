/root/repo/target/debug/deps/section3-df1a9acfd9dd43b2.d: crates/bench/src/bin/section3.rs Cargo.toml

/root/repo/target/debug/deps/libsection3-df1a9acfd9dd43b2.rmeta: crates/bench/src/bin/section3.rs Cargo.toml

crates/bench/src/bin/section3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
