/root/repo/target/debug/deps/figure8-610ca1d1b2809923.d: crates/bench/src/bin/figure8.rs

/root/repo/target/debug/deps/figure8-610ca1d1b2809923: crates/bench/src/bin/figure8.rs

crates/bench/src/bin/figure8.rs:
