/root/repo/target/debug/deps/techniques-5c9a0b64287367fa.d: crates/core/tests/techniques.rs

/root/repo/target/debug/deps/techniques-5c9a0b64287367fa: crates/core/tests/techniques.rs

crates/core/tests/techniques.rs:
