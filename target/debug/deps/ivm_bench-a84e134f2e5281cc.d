/root/repo/target/debug/deps/ivm_bench-a84e134f2e5281cc.d: crates/bench/src/lib.rs crates/bench/src/native_model.rs

/root/repo/target/debug/deps/ivm_bench-a84e134f2e5281cc: crates/bench/src/lib.rs crates/bench/src/native_model.rs

crates/bench/src/lib.rs:
crates/bench/src/native_model.rs:
