/root/repo/target/debug/deps/simulator_study-f4fb87de59818c0f.d: crates/bench/src/bin/simulator_study.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_study-f4fb87de59818c0f.rmeta: crates/bench/src/bin/simulator_study.rs Cargo.toml

crates/bench/src/bin/simulator_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
