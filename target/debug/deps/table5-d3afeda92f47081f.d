/root/repo/target/debug/deps/table5-d3afeda92f47081f.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-d3afeda92f47081f: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
