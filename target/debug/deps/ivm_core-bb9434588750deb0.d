/root/repo/target/debug/deps/ivm_core-bb9434588750deb0.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/native.rs crates/core/src/profile.rs crates/core/src/program.rs crates/core/src/replicate.rs crates/core/src/slots.rs crates/core/src/spec.rs crates/core/src/superinst.rs crates/core/src/technique.rs crates/core/src/trace.rs crates/core/src/translate.rs Cargo.toml

/root/repo/target/debug/deps/libivm_core-bb9434588750deb0.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/native.rs crates/core/src/profile.rs crates/core/src/program.rs crates/core/src/replicate.rs crates/core/src/slots.rs crates/core/src/spec.rs crates/core/src/superinst.rs crates/core/src/technique.rs crates/core/src/trace.rs crates/core/src/translate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/events.rs:
crates/core/src/layout.rs:
crates/core/src/native.rs:
crates/core/src/profile.rs:
crates/core/src/program.rs:
crates/core/src/replicate.rs:
crates/core/src/slots.rs:
crates/core/src/spec.rs:
crates/core/src/superinst.rs:
crates/core/src/technique.rs:
crates/core/src/trace.rs:
crates/core/src/translate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
