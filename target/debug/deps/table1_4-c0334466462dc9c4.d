/root/repo/target/debug/deps/table1_4-c0334466462dc9c4.d: crates/bench/src/bin/table1_4.rs

/root/repo/target/debug/deps/table1_4-c0334466462dc9c4: crates/bench/src/bin/table1_4.rs

crates/bench/src/bin/table1_4.rs:
