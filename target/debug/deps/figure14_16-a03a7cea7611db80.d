/root/repo/target/debug/deps/figure14_16-a03a7cea7611db80.d: crates/bench/src/bin/figure14_16.rs

/root/repo/target/debug/deps/figure14_16-a03a7cea7611db80: crates/bench/src/bin/figure14_16.rs

crates/bench/src/bin/figure14_16.rs:
