/root/repo/target/debug/deps/ivm_java-a3dc64f619bcde5c.d: crates/javavm/src/lib.rs crates/javavm/src/asm.rs crates/javavm/src/inst.rs crates/javavm/src/measure.rs crates/javavm/src/programs/mod.rs crates/javavm/src/programs/compress.rs crates/javavm/src/programs/db.rs crates/javavm/src/programs/jack.rs crates/javavm/src/programs/javac.rs crates/javavm/src/programs/jess.rs crates/javavm/src/programs/mpeg.rs crates/javavm/src/programs/mtrt.rs crates/javavm/src/vm.rs

/root/repo/target/debug/deps/libivm_java-a3dc64f619bcde5c.rlib: crates/javavm/src/lib.rs crates/javavm/src/asm.rs crates/javavm/src/inst.rs crates/javavm/src/measure.rs crates/javavm/src/programs/mod.rs crates/javavm/src/programs/compress.rs crates/javavm/src/programs/db.rs crates/javavm/src/programs/jack.rs crates/javavm/src/programs/javac.rs crates/javavm/src/programs/jess.rs crates/javavm/src/programs/mpeg.rs crates/javavm/src/programs/mtrt.rs crates/javavm/src/vm.rs

/root/repo/target/debug/deps/libivm_java-a3dc64f619bcde5c.rmeta: crates/javavm/src/lib.rs crates/javavm/src/asm.rs crates/javavm/src/inst.rs crates/javavm/src/measure.rs crates/javavm/src/programs/mod.rs crates/javavm/src/programs/compress.rs crates/javavm/src/programs/db.rs crates/javavm/src/programs/jack.rs crates/javavm/src/programs/javac.rs crates/javavm/src/programs/jess.rs crates/javavm/src/programs/mpeg.rs crates/javavm/src/programs/mtrt.rs crates/javavm/src/vm.rs

crates/javavm/src/lib.rs:
crates/javavm/src/asm.rs:
crates/javavm/src/inst.rs:
crates/javavm/src/measure.rs:
crates/javavm/src/programs/mod.rs:
crates/javavm/src/programs/compress.rs:
crates/javavm/src/programs/db.rs:
crates/javavm/src/programs/jack.rs:
crates/javavm/src/programs/javac.rs:
crates/javavm/src/programs/jess.rs:
crates/javavm/src/programs/mpeg.rs:
crates/javavm/src/programs/mtrt.rs:
crates/javavm/src/vm.rs:
