/root/repo/target/debug/deps/properties-8b2051d8d7526c69.d: crates/bpred/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-8b2051d8d7526c69.rmeta: crates/bpred/tests/properties.rs Cargo.toml

crates/bpred/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
