/root/repo/target/debug/deps/predictors-a6311dfe16390d9e.d: crates/bench/benches/predictors.rs Cargo.toml

/root/repo/target/debug/deps/libpredictors-a6311dfe16390d9e.rmeta: crates/bench/benches/predictors.rs Cargo.toml

crates/bench/benches/predictors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
