/root/repo/target/debug/deps/ivm_bpred-9fc3fa2f0c002fd7.d: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/cascaded.rs crates/bpred/src/case_block.rs crates/bpred/src/ideal.rs crates/bpred/src/stats.rs crates/bpred/src/two_bit.rs crates/bpred/src/two_level.rs

/root/repo/target/debug/deps/ivm_bpred-9fc3fa2f0c002fd7: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/cascaded.rs crates/bpred/src/case_block.rs crates/bpred/src/ideal.rs crates/bpred/src/stats.rs crates/bpred/src/two_bit.rs crates/bpred/src/two_level.rs

crates/bpred/src/lib.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/cascaded.rs:
crates/bpred/src/case_block.rs:
crates/bpred/src/ideal.rs:
crates/bpred/src/stats.rs:
crates/bpred/src/two_bit.rs:
crates/bpred/src/two_level.rs:
