/root/repo/target/debug/examples/forth_repl-c7644be7a90773d5.d: examples/forth_repl.rs

/root/repo/target/debug/examples/forth_repl-c7644be7a90773d5: examples/forth_repl.rs

examples/forth_repl.rs:
