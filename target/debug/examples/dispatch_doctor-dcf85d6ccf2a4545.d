/root/repo/target/debug/examples/dispatch_doctor-dcf85d6ccf2a4545.d: examples/dispatch_doctor.rs

/root/repo/target/debug/examples/dispatch_doctor-dcf85d6ccf2a4545: examples/dispatch_doctor.rs

examples/dispatch_doctor.rs:
