/root/repo/target/debug/examples/forth_repl-497b86962160141f.d: examples/forth_repl.rs Cargo.toml

/root/repo/target/debug/examples/libforth_repl-497b86962160141f.rmeta: examples/forth_repl.rs Cargo.toml

examples/forth_repl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
