/root/repo/target/debug/examples/btb_explorer-c6143b9ce5507060.d: examples/btb_explorer.rs

/root/repo/target/debug/examples/btb_explorer-c6143b9ce5507060: examples/btb_explorer.rs

examples/btb_explorer.rs:
