/root/repo/target/debug/examples/java_suite-e9f1abeae2386782.d: examples/java_suite.rs Cargo.toml

/root/repo/target/debug/examples/libjava_suite-e9f1abeae2386782.rmeta: examples/java_suite.rs Cargo.toml

examples/java_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
