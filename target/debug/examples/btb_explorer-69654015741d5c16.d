/root/repo/target/debug/examples/btb_explorer-69654015741d5c16.d: examples/btb_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libbtb_explorer-69654015741d5c16.rmeta: examples/btb_explorer.rs Cargo.toml

examples/btb_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
