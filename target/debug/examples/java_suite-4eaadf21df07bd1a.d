/root/repo/target/debug/examples/java_suite-4eaadf21df07bd1a.d: examples/java_suite.rs

/root/repo/target/debug/examples/java_suite-4eaadf21df07bd1a: examples/java_suite.rs

examples/java_suite.rs:
