/root/repo/target/debug/examples/quickstart-3de017c98386a7c9.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3de017c98386a7c9: examples/quickstart.rs

examples/quickstart.rs:
