/root/repo/target/debug/examples/dispatch_doctor-c14c277416145396.d: examples/dispatch_doctor.rs Cargo.toml

/root/repo/target/debug/examples/libdispatch_doctor-c14c277416145396.rmeta: examples/dispatch_doctor.rs Cargo.toml

examples/dispatch_doctor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
