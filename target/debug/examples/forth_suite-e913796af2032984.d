/root/repo/target/debug/examples/forth_suite-e913796af2032984.d: examples/forth_suite.rs Cargo.toml

/root/repo/target/debug/examples/libforth_suite-e913796af2032984.rmeta: examples/forth_suite.rs Cargo.toml

examples/forth_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
