/root/repo/target/debug/examples/forth_suite-44b32fc0b563d60b.d: examples/forth_suite.rs

/root/repo/target/debug/examples/forth_suite-44b32fc0b563d60b: examples/forth_suite.rs

examples/forth_suite.rs:
