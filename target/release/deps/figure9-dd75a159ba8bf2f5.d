/root/repo/target/release/deps/figure9-dd75a159ba8bf2f5.d: crates/bench/src/bin/figure9.rs

/root/repo/target/release/deps/figure9-dd75a159ba8bf2f5: crates/bench/src/bin/figure9.rs

crates/bench/src/bin/figure9.rs:
