/root/repo/target/release/deps/superlen-6d00fa83e3da8d1b.d: crates/bench/src/bin/superlen.rs

/root/repo/target/release/deps/superlen-6d00fa83e3da8d1b: crates/bench/src/bin/superlen.rs

crates/bench/src/bin/superlen.rs:
