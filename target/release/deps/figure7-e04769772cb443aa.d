/root/repo/target/release/deps/figure7-e04769772cb443aa.d: crates/bench/src/bin/figure7.rs

/root/repo/target/release/deps/figure7-e04769772cb443aa: crates/bench/src/bin/figure7.rs

crates/bench/src/bin/figure7.rs:
