/root/repo/target/release/deps/section3-0d875604ca372fbe.d: crates/bench/src/bin/section3.rs

/root/repo/target/release/deps/section3-0d875604ca372fbe: crates/bench/src/bin/section3.rs

crates/bench/src/bin/section3.rs:
