/root/repo/target/release/deps/ivm_bpred-ea9e7e4d97fee635.d: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/cascaded.rs crates/bpred/src/case_block.rs crates/bpred/src/ideal.rs crates/bpred/src/stats.rs crates/bpred/src/two_bit.rs crates/bpred/src/two_level.rs

/root/repo/target/release/deps/libivm_bpred-ea9e7e4d97fee635.rlib: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/cascaded.rs crates/bpred/src/case_block.rs crates/bpred/src/ideal.rs crates/bpred/src/stats.rs crates/bpred/src/two_bit.rs crates/bpred/src/two_level.rs

/root/repo/target/release/deps/libivm_bpred-ea9e7e4d97fee635.rmeta: crates/bpred/src/lib.rs crates/bpred/src/btb.rs crates/bpred/src/cascaded.rs crates/bpred/src/case_block.rs crates/bpred/src/ideal.rs crates/bpred/src/stats.rs crates/bpred/src/two_bit.rs crates/bpred/src/two_level.rs

crates/bpred/src/lib.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/cascaded.rs:
crates/bpred/src/case_block.rs:
crates/bpred/src/ideal.rs:
crates/bpred/src/stats.rs:
crates/bpred/src/two_bit.rs:
crates/bpred/src/two_level.rs:
