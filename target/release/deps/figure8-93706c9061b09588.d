/root/repo/target/release/deps/figure8-93706c9061b09588.d: crates/bench/src/bin/figure8.rs

/root/repo/target/release/deps/figure8-93706c9061b09588: crates/bench/src/bin/figure8.rs

crates/bench/src/bin/figure8.rs:
