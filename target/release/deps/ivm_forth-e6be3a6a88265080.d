/root/repo/target/release/deps/ivm_forth-e6be3a6a88265080.d: crates/forthvm/src/lib.rs crates/forthvm/src/compiler.rs crates/forthvm/src/inst.rs crates/forthvm/src/measure.rs crates/forthvm/src/programs.rs crates/forthvm/src/vm.rs crates/forthvm/src/../forth/gray.fs crates/forthvm/src/../forth/bench-gc.fs crates/forthvm/src/../forth/tscp.fs crates/forthvm/src/../forth/vmgen.fs crates/forthvm/src/../forth/cross.fs crates/forthvm/src/../forth/brainless.fs crates/forthvm/src/../forth/brew.fs crates/forthvm/src/../forth/micro.fs

/root/repo/target/release/deps/libivm_forth-e6be3a6a88265080.rlib: crates/forthvm/src/lib.rs crates/forthvm/src/compiler.rs crates/forthvm/src/inst.rs crates/forthvm/src/measure.rs crates/forthvm/src/programs.rs crates/forthvm/src/vm.rs crates/forthvm/src/../forth/gray.fs crates/forthvm/src/../forth/bench-gc.fs crates/forthvm/src/../forth/tscp.fs crates/forthvm/src/../forth/vmgen.fs crates/forthvm/src/../forth/cross.fs crates/forthvm/src/../forth/brainless.fs crates/forthvm/src/../forth/brew.fs crates/forthvm/src/../forth/micro.fs

/root/repo/target/release/deps/libivm_forth-e6be3a6a88265080.rmeta: crates/forthvm/src/lib.rs crates/forthvm/src/compiler.rs crates/forthvm/src/inst.rs crates/forthvm/src/measure.rs crates/forthvm/src/programs.rs crates/forthvm/src/vm.rs crates/forthvm/src/../forth/gray.fs crates/forthvm/src/../forth/bench-gc.fs crates/forthvm/src/../forth/tscp.fs crates/forthvm/src/../forth/vmgen.fs crates/forthvm/src/../forth/cross.fs crates/forthvm/src/../forth/brainless.fs crates/forthvm/src/../forth/brew.fs crates/forthvm/src/../forth/micro.fs

crates/forthvm/src/lib.rs:
crates/forthvm/src/compiler.rs:
crates/forthvm/src/inst.rs:
crates/forthvm/src/measure.rs:
crates/forthvm/src/programs.rs:
crates/forthvm/src/vm.rs:
crates/forthvm/src/../forth/gray.fs:
crates/forthvm/src/../forth/bench-gc.fs:
crates/forthvm/src/../forth/tscp.fs:
crates/forthvm/src/../forth/vmgen.fs:
crates/forthvm/src/../forth/cross.fs:
crates/forthvm/src/../forth/brainless.fs:
crates/forthvm/src/../forth/brew.fs:
crates/forthvm/src/../forth/micro.fs:
