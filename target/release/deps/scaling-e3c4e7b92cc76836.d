/root/repo/target/release/deps/scaling-e3c4e7b92cc76836.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-e3c4e7b92cc76836: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
