/root/repo/target/release/deps/table9_10-c34cb5f8be6ec8f4.d: crates/bench/src/bin/table9_10.rs

/root/repo/target/release/deps/table9_10-c34cb5f8be6ec8f4: crates/bench/src/bin/table9_10.rs

crates/bench/src/bin/table9_10.rs:
