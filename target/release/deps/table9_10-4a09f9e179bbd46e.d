/root/repo/target/release/deps/table9_10-4a09f9e179bbd46e.d: crates/bench/src/bin/table9_10.rs

/root/repo/target/release/deps/table9_10-4a09f9e179bbd46e: crates/bench/src/bin/table9_10.rs

crates/bench/src/bin/table9_10.rs:
