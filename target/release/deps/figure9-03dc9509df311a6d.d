/root/repo/target/release/deps/figure9-03dc9509df311a6d.d: crates/bench/src/bin/figure9.rs

/root/repo/target/release/deps/figure9-03dc9509df311a6d: crates/bench/src/bin/figure9.rs

crates/bench/src/bin/figure9.rs:
