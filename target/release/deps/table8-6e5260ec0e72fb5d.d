/root/repo/target/release/deps/table8-6e5260ec0e72fb5d.d: crates/bench/src/bin/table8.rs

/root/repo/target/release/deps/table8-6e5260ec0e72fb5d: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
