/root/repo/target/release/deps/table8-e34c7cbd02f9cee4.d: crates/bench/src/bin/table8.rs

/root/repo/target/release/deps/table8-e34c7cbd02f9cee4: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
