/root/repo/target/release/deps/ivm_bench-71b7f0952cc9e38c.d: crates/bench/src/lib.rs crates/bench/src/native_model.rs

/root/repo/target/release/deps/ivm_bench-71b7f0952cc9e38c: crates/bench/src/lib.rs crates/bench/src/native_model.rs

crates/bench/src/lib.rs:
crates/bench/src/native_model.rs:
