/root/repo/target/release/deps/figure10_13-8d01cdb3570dae6b.d: crates/bench/src/bin/figure10_13.rs

/root/repo/target/release/deps/figure10_13-8d01cdb3570dae6b: crates/bench/src/bin/figure10_13.rs

crates/bench/src/bin/figure10_13.rs:
