/root/repo/target/release/deps/related_work-4680883ebd91a441.d: crates/bench/src/bin/related_work.rs

/root/repo/target/release/deps/related_work-4680883ebd91a441: crates/bench/src/bin/related_work.rs

crates/bench/src/bin/related_work.rs:
