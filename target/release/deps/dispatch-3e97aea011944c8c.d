/root/repo/target/release/deps/dispatch-3e97aea011944c8c.d: crates/bench/benches/dispatch.rs

/root/repo/target/release/deps/dispatch-3e97aea011944c8c: crates/bench/benches/dispatch.rs

crates/bench/benches/dispatch.rs:
