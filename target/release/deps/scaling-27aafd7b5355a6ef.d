/root/repo/target/release/deps/scaling-27aafd7b5355a6ef.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-27aafd7b5355a6ef: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
