/root/repo/target/release/deps/table1_4-66e6f6c1ff5ff6c7.d: crates/bench/src/bin/table1_4.rs

/root/repo/target/release/deps/table1_4-66e6f6c1ff5ff6c7: crates/bench/src/bin/table1_4.rs

crates/bench/src/bin/table1_4.rs:
