/root/repo/target/release/deps/related_work-e9a8d45e791905bd.d: crates/bench/src/bin/related_work.rs

/root/repo/target/release/deps/related_work-e9a8d45e791905bd: crates/bench/src/bin/related_work.rs

crates/bench/src/bin/related_work.rs:
