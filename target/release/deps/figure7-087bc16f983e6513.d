/root/repo/target/release/deps/figure7-087bc16f983e6513.d: crates/bench/src/bin/figure7.rs

/root/repo/target/release/deps/figure7-087bc16f983e6513: crates/bench/src/bin/figure7.rs

crates/bench/src/bin/figure7.rs:
