/root/repo/target/release/deps/ablations-198c961c3a7d89f1.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-198c961c3a7d89f1: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
