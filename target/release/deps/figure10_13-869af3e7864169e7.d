/root/repo/target/release/deps/figure10_13-869af3e7864169e7.d: crates/bench/src/bin/figure10_13.rs

/root/repo/target/release/deps/figure10_13-869af3e7864169e7: crates/bench/src/bin/figure10_13.rs

crates/bench/src/bin/figure10_13.rs:
