/root/repo/target/release/deps/figure14_16-0a94109209e6939d.d: crates/bench/src/bin/figure14_16.rs

/root/repo/target/release/deps/figure14_16-0a94109209e6939d: crates/bench/src/bin/figure14_16.rs

crates/bench/src/bin/figure14_16.rs:
