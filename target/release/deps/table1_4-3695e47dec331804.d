/root/repo/target/release/deps/table1_4-3695e47dec331804.d: crates/bench/src/bin/table1_4.rs

/root/repo/target/release/deps/table1_4-3695e47dec331804: crates/bench/src/bin/table1_4.rs

crates/bench/src/bin/table1_4.rs:
