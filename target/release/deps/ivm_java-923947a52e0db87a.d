/root/repo/target/release/deps/ivm_java-923947a52e0db87a.d: crates/javavm/src/lib.rs crates/javavm/src/asm.rs crates/javavm/src/inst.rs crates/javavm/src/measure.rs crates/javavm/src/programs/mod.rs crates/javavm/src/programs/compress.rs crates/javavm/src/programs/db.rs crates/javavm/src/programs/jack.rs crates/javavm/src/programs/javac.rs crates/javavm/src/programs/jess.rs crates/javavm/src/programs/mpeg.rs crates/javavm/src/programs/mtrt.rs crates/javavm/src/vm.rs

/root/repo/target/release/deps/libivm_java-923947a52e0db87a.rlib: crates/javavm/src/lib.rs crates/javavm/src/asm.rs crates/javavm/src/inst.rs crates/javavm/src/measure.rs crates/javavm/src/programs/mod.rs crates/javavm/src/programs/compress.rs crates/javavm/src/programs/db.rs crates/javavm/src/programs/jack.rs crates/javavm/src/programs/javac.rs crates/javavm/src/programs/jess.rs crates/javavm/src/programs/mpeg.rs crates/javavm/src/programs/mtrt.rs crates/javavm/src/vm.rs

/root/repo/target/release/deps/libivm_java-923947a52e0db87a.rmeta: crates/javavm/src/lib.rs crates/javavm/src/asm.rs crates/javavm/src/inst.rs crates/javavm/src/measure.rs crates/javavm/src/programs/mod.rs crates/javavm/src/programs/compress.rs crates/javavm/src/programs/db.rs crates/javavm/src/programs/jack.rs crates/javavm/src/programs/javac.rs crates/javavm/src/programs/jess.rs crates/javavm/src/programs/mpeg.rs crates/javavm/src/programs/mtrt.rs crates/javavm/src/vm.rs

crates/javavm/src/lib.rs:
crates/javavm/src/asm.rs:
crates/javavm/src/inst.rs:
crates/javavm/src/measure.rs:
crates/javavm/src/programs/mod.rs:
crates/javavm/src/programs/compress.rs:
crates/javavm/src/programs/db.rs:
crates/javavm/src/programs/jack.rs:
crates/javavm/src/programs/javac.rs:
crates/javavm/src/programs/jess.rs:
crates/javavm/src/programs/mpeg.rs:
crates/javavm/src/programs/mtrt.rs:
crates/javavm/src/vm.rs:
