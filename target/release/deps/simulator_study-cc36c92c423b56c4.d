/root/repo/target/release/deps/simulator_study-cc36c92c423b56c4.d: crates/bench/src/bin/simulator_study.rs

/root/repo/target/release/deps/simulator_study-cc36c92c423b56c4: crates/bench/src/bin/simulator_study.rs

crates/bench/src/bin/simulator_study.rs:
