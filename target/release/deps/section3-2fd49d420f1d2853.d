/root/repo/target/release/deps/section3-2fd49d420f1d2853.d: crates/bench/src/bin/section3.rs

/root/repo/target/release/deps/section3-2fd49d420f1d2853: crates/bench/src/bin/section3.rs

crates/bench/src/bin/section3.rs:
