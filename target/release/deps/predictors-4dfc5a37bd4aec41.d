/root/repo/target/release/deps/predictors-4dfc5a37bd4aec41.d: crates/bench/benches/predictors.rs

/root/repo/target/release/deps/predictors-4dfc5a37bd4aec41: crates/bench/benches/predictors.rs

crates/bench/benches/predictors.rs:
