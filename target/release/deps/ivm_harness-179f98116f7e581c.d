/root/repo/target/release/deps/ivm_harness-179f98116f7e581c.d: crates/harness/src/lib.rs crates/harness/src/bench.rs crates/harness/src/prop.rs crates/harness/src/rng.rs

/root/repo/target/release/deps/libivm_harness-179f98116f7e581c.rlib: crates/harness/src/lib.rs crates/harness/src/bench.rs crates/harness/src/prop.rs crates/harness/src/rng.rs

/root/repo/target/release/deps/libivm_harness-179f98116f7e581c.rmeta: crates/harness/src/lib.rs crates/harness/src/bench.rs crates/harness/src/prop.rs crates/harness/src/rng.rs

crates/harness/src/lib.rs:
crates/harness/src/bench.rs:
crates/harness/src/prop.rs:
crates/harness/src/rng.rs:
