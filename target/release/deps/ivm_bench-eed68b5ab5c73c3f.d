/root/repo/target/release/deps/ivm_bench-eed68b5ab5c73c3f.d: crates/bench/src/lib.rs crates/bench/src/native_model.rs

/root/repo/target/release/deps/libivm_bench-eed68b5ab5c73c3f.rlib: crates/bench/src/lib.rs crates/bench/src/native_model.rs

/root/repo/target/release/deps/libivm_bench-eed68b5ab5c73c3f.rmeta: crates/bench/src/lib.rs crates/bench/src/native_model.rs

crates/bench/src/lib.rs:
crates/bench/src/native_model.rs:
