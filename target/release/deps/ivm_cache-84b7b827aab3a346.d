/root/repo/target/release/deps/ivm_cache-84b7b827aab3a346.d: crates/simcache/src/lib.rs crates/simcache/src/cost.rs crates/simcache/src/cpu.rs crates/simcache/src/icache.rs crates/simcache/src/trace_cache.rs

/root/repo/target/release/deps/libivm_cache-84b7b827aab3a346.rlib: crates/simcache/src/lib.rs crates/simcache/src/cost.rs crates/simcache/src/cpu.rs crates/simcache/src/icache.rs crates/simcache/src/trace_cache.rs

/root/repo/target/release/deps/libivm_cache-84b7b827aab3a346.rmeta: crates/simcache/src/lib.rs crates/simcache/src/cost.rs crates/simcache/src/cpu.rs crates/simcache/src/icache.rs crates/simcache/src/trace_cache.rs

crates/simcache/src/lib.rs:
crates/simcache/src/cost.rs:
crates/simcache/src/cpu.rs:
crates/simcache/src/icache.rs:
crates/simcache/src/trace_cache.rs:
