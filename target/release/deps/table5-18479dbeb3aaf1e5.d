/root/repo/target/release/deps/table5-18479dbeb3aaf1e5.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-18479dbeb3aaf1e5: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
