/root/repo/target/release/deps/figure14_16-04d0e06a43d46085.d: crates/bench/src/bin/figure14_16.rs

/root/repo/target/release/deps/figure14_16-04d0e06a43d46085: crates/bench/src/bin/figure14_16.rs

crates/bench/src/bin/figure14_16.rs:
