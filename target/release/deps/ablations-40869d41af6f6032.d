/root/repo/target/release/deps/ablations-40869d41af6f6032.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-40869d41af6f6032: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
