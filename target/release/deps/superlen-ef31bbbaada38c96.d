/root/repo/target/release/deps/superlen-ef31bbbaada38c96.d: crates/bench/src/bin/superlen.rs

/root/repo/target/release/deps/superlen-ef31bbbaada38c96: crates/bench/src/bin/superlen.rs

crates/bench/src/bin/superlen.rs:
