/root/repo/target/release/deps/simulator_study-2e16272989ae6921.d: crates/bench/src/bin/simulator_study.rs

/root/repo/target/release/deps/simulator_study-2e16272989ae6921: crates/bench/src/bin/simulator_study.rs

crates/bench/src/bin/simulator_study.rs:
