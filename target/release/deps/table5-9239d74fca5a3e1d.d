/root/repo/target/release/deps/table5-9239d74fca5a3e1d.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-9239d74fca5a3e1d: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
