/root/repo/target/release/deps/figure8-7247a5a57909ae91.d: crates/bench/src/bin/figure8.rs

/root/repo/target/release/deps/figure8-7247a5a57909ae91: crates/bench/src/bin/figure8.rs

crates/bench/src/bin/figure8.rs:
