/root/repo/target/release/deps/ivm-44a55a1775a14c9c.d: src/lib.rs

/root/repo/target/release/deps/libivm-44a55a1775a14c9c.rlib: src/lib.rs

/root/repo/target/release/deps/libivm-44a55a1775a14c9c.rmeta: src/lib.rs

src/lib.rs:
