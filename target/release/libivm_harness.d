/root/repo/target/release/libivm_harness.rlib: /root/repo/crates/harness/src/bench.rs /root/repo/crates/harness/src/lib.rs /root/repo/crates/harness/src/prop.rs /root/repo/crates/harness/src/rng.rs
