//! Runs the SPECjvm98-analog suite (paper Table VII) under every JVM
//! interpreter variant of Figure 9 and prints the speedup matrix.
//!
//! Run with: `cargo run --release --example java_suite`

use ivm::cache::CpuSpec;
use ivm::core::{Profile, Technique};
use ivm::java::programs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cpu = CpuSpec::pentium4_northwood();

    println!("Speedups over plain threaded code on {} (paper Figure 9):", cpu.name);
    print!("{:<22}", "technique");
    for b in programs::SUITE {
        print!(" {:>9}", b.name);
    }
    println!();

    // Paper §7.1: cross-validated training — each benchmark's static
    // selection is trained on the profiles of all the *other* benchmarks.
    let profiles: Vec<Profile> = programs::SUITE
        .iter()
        .map(|b| ivm::core::profile(&(b.build)()).expect("training run"))
        .collect();
    let trainings: Vec<Profile> = (0..programs::SUITE.len())
        .map(|i| {
            let mut p = Profile::new();
            for (j, other) in profiles.iter().enumerate() {
                if i != j {
                    p.merge(other);
                }
            }
            p
        })
        .collect();

    let mut plain_cycles = Vec::new();
    for (b, training) in programs::SUITE.iter().zip(&trainings) {
        let image = (b.build)();
        let (r, _) = ivm::core::measure(&image, Technique::Threaded, &cpu, Some(training))?;
        plain_cycles.push(r.cycles);
    }
    for tech in Technique::jvm_suite() {
        print!("{:<22}", tech.paper_name());
        for ((b, training), &plain) in programs::SUITE.iter().zip(&trainings).zip(&plain_cycles) {
            let image = (b.build)();
            let (r, _) = ivm::core::measure(&image, tech, &cpu, Some(training))?;
            print!(" {:>9.2}", plain / r.cycles);
        }
        println!();
    }
    Ok(())
}
