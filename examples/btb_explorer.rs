//! Explore how predictor hardware interacts with the software techniques:
//! run one Forth benchmark across predictor families and BTB sizes.
//!
//! Run with: `cargo run --release --example btb_explorer -- [benchmark]`

use ivm::bpred::{
    Btb, BtbConfig, IdealBtb, IndirectPredictor, TwoBitBtb, TwoLevelConfig, TwoLevelPredictor,
};
use ivm::cache::{CpuSpec, PerfectIcache};
use ivm::core::{Engine, Technique};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bench-gc".into());
    let bench =
        ivm::forth::programs::find(&name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let training = ivm::core::profile(&ivm::forth::programs::BRAINLESS.image())?;
    let cpu = CpuSpec::celeron800();

    type Make = fn() -> Box<dyn IndirectPredictor>;
    let predictors: [(&str, Make); 5] = [
        ("ideal BTB", || Box::new(IdealBtb::new())),
        ("BTB 512x4", || Box::new(Btb::new(BtbConfig::celeron()))),
        ("BTB 4096x4", || Box::new(Btb::new(BtbConfig::pentium4()))),
        ("BTB + 2-bit counters", || Box::new(TwoBitBtb::new())),
        ("two-level (Pentium M)", || Box::new(TwoLevelPredictor::new(TwoLevelConfig::pentium_m()))),
    ];

    println!("Benchmark: {name} (Celeron cost model, perfect I-cache)");
    println!(
        "{:<24} {:>14} {:>14} {:>10}",
        "predictor", "plain mispred%", "drepl mispred%", "drepl gain"
    );
    for (pname, make) in predictors {
        let image = bench.image();
        let engine = Engine::new(make(), Box::new(PerfectIcache::default()), cpu.costs);
        let (plain, _) =
            ivm::core::measure_with(&image, Technique::Threaded, engine, Some(&training))?;
        let image = bench.image();
        let engine = Engine::new(make(), Box::new(PerfectIcache::default()), cpu.costs);
        let (drepl, _) =
            ivm::core::measure_with(&image, Technique::DynamicRepl, engine, Some(&training))?;
        println!(
            "{:<24} {:>14.1} {:>14.1} {:>10.2}",
            pname,
            100.0 * plain.counters.misprediction_rate(),
            100.0 * drepl.counters.misprediction_rate(),
            plain.cycles / drepl.cycles,
        );
    }
    println!(
        "\nReading: on BTBs, dynamic replication removes most mispredictions in\n\
         software; a two-level predictor removes them in hardware, so the\n\
         software technique gains much less (paper §8)."
    );
    Ok(())
}
