//! Runs the full Gforth-analog benchmark suite (paper Table VI) under every
//! interpreter variant of Figure 7/8 and prints the speedup matrix.
//!
//! Run with: `cargo run --release --example forth_suite -- [celeron|p4]`

use ivm::cache::CpuSpec;
use ivm::core::Technique;
use ivm::forth::programs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "p4".into());
    let cpu = match arg.as_str() {
        "celeron" => CpuSpec::celeron800(),
        _ => CpuSpec::pentium4_northwood(),
    };

    // The paper trains the static techniques on brainless (§7.1).
    let training = ivm::core::profile(&programs::BRAINLESS.image())?;

    println!("Speedups over plain threaded code on {} (paper Figure 7/8):", cpu.name);
    print!("{:<22}", "technique");
    for b in programs::SUITE {
        print!(" {:>9}", b.name);
    }
    println!();

    let suite = Technique::gforth_suite();
    let mut plain_cycles = Vec::new();
    for b in programs::SUITE {
        let image = b.image();
        let (r, _) = ivm::core::measure(&image, Technique::Threaded, &cpu, Some(&training))?;
        plain_cycles.push(r.cycles);
    }
    for tech in suite {
        print!("{:<22}", tech.paper_name());
        for (b, &plain) in programs::SUITE.iter().zip(&plain_cycles) {
            let image = b.image();
            let (r, _) = ivm::core::measure(&image, tech, &cpu, Some(&training))?;
            print!(" {:>9.2}", plain / r.cycles);
        }
        println!();
    }
    Ok(())
}
