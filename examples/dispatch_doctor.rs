//! "Dispatch doctor": find which VM instructions cause the mispredictions.
//!
//! Runs a Forth benchmark under plain threaded code with per-branch
//! statistics, then maps the worst dispatch branches back to VM opcodes via
//! the translation — the diagnosis that motivates replication in the paper
//! (a VM instruction occurring several times in the working set thrashes
//! its BTB entry).
//!
//! Run with: `cargo run --release --example dispatch_doctor -- [benchmark] [technique]`
//! (technique defaults to `plain`; any paper name parses, e.g. "across bb")

use std::collections::HashMap;

use ivm::cache::CpuSpec;
use ivm::core::{translate, Engine, Measurement, Runner, SuperSelection, Technique};
use ivm::forth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bench-gc".into());
    let technique: Technique = std::env::args()
        .nth(2)
        .map(|t| t.parse().expect("technique name"))
        .unwrap_or(Technique::Threaded);
    let bench =
        ivm::forth::programs::find(&name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let image = bench.image();
    let cpu = CpuSpec::celeron800();

    let training = (technique.needs_profile()).then(|| {
        ivm::core::profile(&ivm::forth::programs::BRAINLESS.image()).expect("training run")
    });
    let o = forth::ops();
    let translation =
        translate(&o.spec, &image.program, technique, training.as_ref(), SuperSelection::gforth());

    // Map each dispatch branch address to the opcode(s) owning it.
    let mut owner: HashMap<u64, &str> = HashMap::new();
    for i in 0..image.program.len() {
        let slot = translation.slot(i);
        for dp in [slot.fall, slot.taken].into_iter().flatten() {
            owner.entry(dp.branch).or_insert_with(|| o.spec.name(image.program.op(i)));
        }
    }

    let engine = Engine::for_cpu(&cpu).with_branch_stats();
    let mut m = Measurement::new(translation, Runner::new(engine));
    forth::run(&image, &mut m, forth::DEFAULT_FUEL)?;

    println!("Worst dispatch branches for {name} ({technique}, {}):", cpu.name);
    println!(
        "{:<12} {:<12} {:>12} {:>12} {:>8}",
        "branch", "VM word", "executed", "mispred", "rate%"
    );
    for (branch, execs, misses) in m.runner().engine().top_mispredicted(12) {
        println!(
            "{branch:#012x} {:<12} {execs:>12} {misses:>12} {:>8.1}",
            owner.get(&branch).copied().unwrap_or("?"),
            100.0 * misses as f64 / execs as f64,
        );
    }
    let r = m.finish();
    println!(
        "\ntotal: {} indirect branches, {} mispredicted ({:.1}%)",
        r.counters.indirect_branches,
        r.counters.indirect_mispredicted,
        100.0 * r.counters.misprediction_rate(),
    );
    println!(
        "Words whose dispatch thrashes occur at multiple points of the working\n\
         set — exactly the candidates replication (paper §4.1) splits apart."
    );
    Ok(())
}
