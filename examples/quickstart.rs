//! Quickstart: compile a Forth program, then compare interpreter dispatch
//! techniques on a simulated Celeron-800 and Pentium 4.
//!
//! Run with: `cargo run --release --example quickstart`

use ivm::cache::CpuSpec;
use ivm::core::Technique;
use ivm::forth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little program with the Table I pathology: VM instructions that
    // occur several times in the working set with different successors.
    let image = forth::compile(
        "
        : scale ( n -- n' ) dup 2* swap 1+ + 16383 and ;
        : mix   ( n -- n' ) dup 3 * swap 1- xor 16383 and ;
        : main
          1
          2000 0 do
            scale mix scale scale mix
          loop
          . cr ;
        ",
    )?;
    let profile = ivm::core::profile(&image)?;

    for cpu in [CpuSpec::celeron800(), CpuSpec::pentium4_northwood()] {
        println!("== {} ==", cpu.name);
        println!(
            "{:<22} {:>12} {:>10} {:>10} {:>9} {:>8}",
            "technique", "cycles", "ind.br.", "mispred", "code(B)", "speedup"
        );
        let (plain, out) = ivm::core::measure(&image, Technique::Threaded, &cpu, Some(&profile))?;
        for tech in Technique::gforth_suite() {
            let (r, o) = ivm::core::measure(&image, tech, &cpu, Some(&profile))?;
            assert_eq!(o.text, out.text, "layout must not change semantics");
            println!(
                "{:<22} {:>12.0} {:>10} {:>10} {:>9} {:>8.2}",
                tech.paper_name(),
                r.cycles,
                r.counters.indirect_branches,
                r.counters.indirect_mispredicted,
                r.counters.code_bytes,
                r.speedup_over(&plain),
            );
        }
        println!();
    }
    Ok(())
}
