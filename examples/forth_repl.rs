//! A tiny interactive Forth with per-line dispatch statistics: type a
//! program fragment, see its output plus how the simulated Celeron would
//! have predicted it under two interpreter builds.
//!
//! Run with: `cargo run --release --example forth_repl`
//! (pipe input for scripted use: `echo ': main 2 3 + . ;' | cargo run ...`)

use std::io::{self, BufRead, Write};

use ivm::cache::CpuSpec;
use ivm::core::Technique;
use ivm::forth;

fn main() -> io::Result<()> {
    let stdin = io::stdin();
    let mut out = io::stdout();
    let cpu = CpuSpec::celeron800();
    println!("mini-Forth — enter a program containing `: main ... ;` (blank line to run, Ctrl-D to quit)");
    let mut buffer = String::new();
    print!("> ");
    out.flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        if !line.trim().is_empty() {
            buffer.push_str(&line);
            buffer.push('\n');
            print!("> ");
            out.flush()?;
            continue;
        }
        if buffer.trim().is_empty() {
            print!("> ");
            out.flush()?;
            continue;
        }
        match forth::compile(&buffer) {
            Err(e) => println!("{e}"),
            Ok(image) => match ivm::core::profile(&image) {
                Err(e) => println!("runtime error: {e}"),
                Ok(profile) => {
                    for tech in [Technique::Threaded, Technique::AcrossBb] {
                        match ivm::core::measure(&image, tech, &cpu, Some(&profile)) {
                            Err(e) => println!("runtime error: {e}"),
                            Ok((r, o)) => println!(
                                "[{:<10}] out: {:<16} dispatches: {:>8} mispred: {:>7} cycles: {:>10.0}",
                                tech.paper_name(),
                                o.text.trim(),
                                r.counters.dispatches,
                                r.counters.indirect_mispredicted,
                                r.cycles,
                            ),
                        }
                    }
                }
            },
        }
        buffer.clear();
        print!("> ");
        out.flush()?;
    }
    Ok(())
}
